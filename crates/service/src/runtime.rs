//! The long-lived, shared [`Runtime`]: one worker pool, many clients.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tb_core::{run_scheduler_on_ctx, BlockProgram, Cancellable, SchedConfig, SchedulerKind};
use tb_runtime::{InjectorMetrics, ThreadPool};

use crate::bulk::{adaptive_chunk_len, BulkCore, BulkHandle};
use crate::gate::Gate;
use crate::handle::{JobCore, JobError, JobHandle};

/// Construction parameters for a [`Runtime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads in the shared pool. Defaults to the machine's
    /// available parallelism.
    pub threads: usize,
    /// Backpressure bound: admitted-but-incomplete jobs (scheduler jobs,
    /// closure jobs and bulk *chunks* all count as one each). Submissions
    /// beyond this block the submitting client until a slot frees.
    /// Defaults to `8 × threads` — enough depth to keep every worker fed
    /// through job-boundary gaps, small enough that queueing delay stays
    /// bounded by a few job service times.
    pub max_inflight: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        RuntimeConfig { threads, max_inflight: threads * 8 }
    }
}

/// Lifetime counters for a runtime (monotone, Relaxed; exact at quiescence).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Jobs admitted past the gate (including bulk chunks).
    pub submitted: u64,
    /// Jobs that completed with a value.
    pub completed: u64,
    /// Jobs that finished cancelled.
    pub cancelled: u64,
    /// Jobs whose program panicked (contained; see [`JobError::Panicked`]).
    pub panicked: u64,
    /// Admitted jobs not yet finished, at snapshot time.
    pub inflight: usize,
    /// The gate's slot capacity.
    pub max_inflight: usize,
    /// Times a submitter blocked on the gate (backpressure engaged).
    pub backpressure_waits: u64,
    /// Submission-path counters of the pool's segmented injector.
    /// `injector.full_waits == 0` is the "submission never spin-blocks"
    /// invariant.
    pub injector: InjectorMetrics,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
}

impl Counters {
    fn finish(&self, gate: &Gate, outcome: &Result<(), JobError>) {
        match outcome {
            Ok(()) => self.completed.fetch_add(1, Ordering::Relaxed),
            Err(JobError::Cancelled) => self.cancelled.fetch_add(1, Ordering::Relaxed),
            Err(JobError::Panicked) => self.panicked.fetch_add(1, Ordering::Relaxed),
        };
        gate.release();
    }
}

struct Inner {
    pool: ThreadPool,
    // The gate and counters are their own `Arc`s — job closures capture
    // *these*, never `Inner`, so a worker can never hold the last reference
    // to the pool it runs on (which would make `ThreadPool::drop` join the
    // worker's own thread).
    gate: Arc<Gate>,
    counters: Arc<Counters>,
}

/// A persistent, multi-tenant front-end over one work-stealing pool.
///
/// Where `ThreadPool::install` is one-program-one-caller-blocks, a
/// `Runtime` multiplexes many concurrent clients: any thread submits any
/// [`BlockProgram`] (each with its own [`SchedConfig`] and
/// [`SchedulerKind`], so basic, re-expansion and restart jobs coexist),
/// gets back a [`JobHandle`] to poll, block on, or cancel, and the
/// bounded-inflight gate pushes overload back on submitters instead of
/// letting queues grow without bound. Cloning is cheap and shares the pool.
///
/// See the crate docs for a complete example.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<Inner>,
}

impl Runtime {
    /// A runtime with `threads` workers and the default backpressure bound.
    pub fn new(threads: usize) -> Self {
        Self::with_config(RuntimeConfig { threads, ..RuntimeConfig::default() })
    }

    /// A runtime from explicit parameters.
    pub fn with_config(cfg: RuntimeConfig) -> Self {
        Runtime {
            inner: Arc::new(Inner {
                pool: ThreadPool::new(cfg.threads),
                gate: Arc::new(Gate::new(cfg.max_inflight)),
                counters: Arc::new(Counters::default()),
            }),
        }
    }

    /// Worker threads in the shared pool.
    pub fn threads(&self) -> usize {
        self.inner.pool.threads()
    }

    /// Jobs queued in the pool's injector, not yet claimed by a worker.
    pub fn pending_jobs(&self) -> usize {
        self.inner.pool.pending_jobs()
    }

    /// Lifetime counters snapshot.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            inflight: self.inner.gate.inflight(),
            max_inflight: self.inner.gate.max(),
            backpressure_waits: self.inner.gate.blocked(),
            injector: self.inner.pool.injector_metrics(),
        }
    }

    /// Submit `prog` to run under `kind` with `cfg`, blocking only if the
    /// runtime is saturated (the backpressure gate). Returns immediately
    /// with a handle; the run happens on the pool.
    ///
    /// Scheduler choice per job: [`SchedulerKind::Seq`],
    /// [`SchedulerKind::ReExpansion`] and [`SchedulerKind::RestartSimplified`]
    /// are pool-resident and compose freely;
    /// [`SchedulerKind::RestartIdeal`] spawns its own dedicated threads per
    /// job (see `run_scheduler_on_ctx`) and is meant for measurement, not
    /// service traffic.
    pub fn submit<P>(&self, prog: P, cfg: SchedConfig, kind: SchedulerKind) -> JobHandle<P::Reducer>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        self.inner.gate.acquire();
        self.spawn_admitted(prog, cfg, kind)
    }

    /// Like [`Runtime::submit`], but sheds load instead of blocking: when
    /// the runtime is saturated the program is handed back unchanged.
    pub fn try_submit<P>(
        &self,
        prog: P,
        cfg: SchedConfig,
        kind: SchedulerKind,
    ) -> Result<JobHandle<P::Reducer>, P>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        if !self.inner.gate.try_acquire() {
            return Err(prog);
        }
        Ok(self.spawn_admitted(prog, cfg, kind))
    }

    /// Submit a plain closure as a job (no scheduler run): `f` executes on
    /// one worker; the handle behaves like any job handle. Cancelling
    /// before a worker picks the job up skips `f` entirely; once `f` is
    /// running it is not interrupted (closures have no block boundaries to
    /// cancel at).
    pub fn submit_fn<R, F>(&self, f: F) -> JobHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.inner.gate.acquire();
        self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(JobCore::new());
        let token = core.cancel_token();
        let (worker_core, gate, counters) =
            (Arc::clone(&core), Arc::clone(&self.inner.gate), Arc::clone(&self.inner.counters));
        self.inner.pool.spawn(move |_ctx| {
            let result = if token.is_cancelled() {
                Err(JobError::Cancelled)
            } else {
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => Ok(v),
                    Err(_) => Err(JobError::Panicked),
                }
            };
            counters.finish(&gate, &result.as_ref().map(|_| ()).map_err(|e| *e));
            worker_core.complete(result);
        });
        JobHandle::new(core)
    }

    /// Bulk data-parallel submission: cut `items` into chunks
    /// (DCAFE-style adaptive sizing — see [`BulkHandle`] — instead of one
    /// job per item), build a program for each chunk with `make`, and run
    /// every chunk as its own gated job. The returned handle aggregates the
    /// per-chunk reductions in input order.
    ///
    /// Chunks pass the same backpressure gate as everything else, one slot
    /// per chunk, so a huge bulk submission blocks *its own* submitter once
    /// the runtime saturates rather than starving interactive jobs behind
    /// an unbounded queue.
    pub fn submit_bulk<I, P, F>(
        &self,
        items: Vec<I>,
        cfg: SchedConfig,
        kind: SchedulerKind,
        make: F,
    ) -> BulkHandle<P::Reducer>
    where
        I: Send + 'static,
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
        F: Fn(Vec<I>) -> P + Send + Sync + 'static,
    {
        let total = items.len();
        let chunk_len = adaptive_chunk_len(total, self.threads(), self.pending_jobs());
        let chunks = total.div_ceil(chunk_len.max(1));
        let core = Arc::new(BulkCore::new(chunks));
        let token = core.cancel_token();
        let make = Arc::new(make);
        let mut items = items;
        for index in 0..chunks {
            let rest = items.split_off(chunk_len.min(items.len()));
            let chunk = std::mem::replace(&mut items, rest);
            self.inner.gate.acquire();
            self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
            let (core, token, make) = (Arc::clone(&core), token.clone(), Arc::clone(&make));
            let (gate, counters) = (Arc::clone(&self.inner.gate), Arc::clone(&self.inner.counters));
            self.inner.pool.spawn(move |ctx| {
                // The chunk-builder runs inside the catch too: a panic in
                // `make` must route to JobError::Panicked and release the
                // gate slot, not escape to the pool's backstop.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let prog = Cancellable::new(make(chunk), token.clone());
                    run_scheduler_on_ctx(kind, &prog, cfg, ctx)
                }));
                let result = match outcome {
                    Ok(_) if token.is_cancelled() => Err(JobError::Cancelled),
                    Ok(out) => Ok(out.reducer),
                    Err(_) => Err(JobError::Panicked),
                };
                counters.finish(&gate, &result.as_ref().map(|_| ()).map_err(|e| *e));
                core.complete_chunk(index, result);
            });
        }
        debug_assert!(items.is_empty(), "chunking consumed every item");
        BulkHandle::new(core, chunks)
    }

    fn spawn_admitted<P>(&self, prog: P, cfg: SchedConfig, kind: SchedulerKind) -> JobHandle<P::Reducer>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(JobCore::new());
        let token = core.cancel_token();
        let (worker_core, gate, counters) =
            (Arc::clone(&core), Arc::clone(&self.inner.gate), Arc::clone(&self.inner.counters));
        self.inner.pool.spawn(move |ctx| {
            let prog = Cancellable::new(prog, token.clone());
            let outcome = catch_unwind(AssertUnwindSafe(|| run_scheduler_on_ctx(kind, &prog, cfg, ctx)));
            let result = match outcome {
                Ok(_) if token.is_cancelled() => Err(JobError::Cancelled),
                Ok(out) => Ok(out.reducer),
                Err(_) => Err(JobError::Panicked),
            };
            counters.finish(&gate, &result.as_ref().map(|_| ()).map_err(|e| *e));
            worker_core.complete(result);
        });
        JobHandle::new(core)
    }
}
