//! The long-lived, shared [`Runtime`]: one worker pool, many clients.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tb_core::{
    run_scheduler_on_ctx, BlockProgram, CancelToken, Cancellable, RunOutput, SchedConfig, SchedulerKind,
    SeqFrontier, SeqScheduler,
};
use tb_obs::EventKind;
use tb_runtime::{InjectorMetrics, ThreadPool, WorkerCtx};
use tb_spec::{compile, parse_spec, CompiledSpec, SpecCode, SpecTier, VectorSpec};

use crate::bulk::{adaptive_chunk_len, BulkCore, BulkHandle};
use crate::handle::{JobCore, JobError, JobHandle};
use crate::sched::{
    Admission, AdmissionPolicy, FinishObserver, JobId, PreemptFlag, TenantId, TenantSnapshot, TenantSpec,
};

/// The tenant every runtime is born with; tenant-unaware entry points
/// ([`Runtime::submit`], [`Runtime::submit_fn`], [`Runtime::submit_bulk`],
/// [`Runtime::submit_spec`]…) run as this tenant (weight 1, priority 0).
pub const DEFAULT_TENANT: TenantId = 0;

/// Construction parameters for a [`Runtime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads in the shared pool. Defaults to the machine's
    /// available parallelism.
    pub threads: usize,
    /// Pool-side admission bound: jobs *running* on the pool at once
    /// (scheduler jobs, closure jobs and bulk *chunks* all count as one
    /// each). Jobs admitted past a tenant's gate but beyond this bound
    /// wait in the scheduler's queues. Defaults to `8 × threads` — enough
    /// depth to keep every worker fed through job-boundary gaps, small
    /// enough that queueing delay stays bounded by a few job service
    /// times. It is also the default tenant's `max_pending`, so
    /// tenant-unaware workloads see exactly the old bounded-inflight
    /// behaviour: submissions beyond it block the submitting client.
    pub max_inflight: usize,
    /// Bounded park pool: preempted job frontiers held swapped-out at
    /// once. `0` disables preemption. Defaults to `2 × threads`.
    pub max_parked: usize,
    /// Legacy admission: tenant-blind global FIFO with no weights, no
    /// priorities and no preemption — the old global gate's discipline.
    /// Kept as the A/B arm for the starvation regression test; leave
    /// `false` in production.
    pub fifo: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        RuntimeConfig { threads, max_inflight: threads * 8, max_parked: threads * 2, fifo: false }
    }
}

/// Lifetime counters for a runtime (monotone, Relaxed; exact at quiescence).
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Jobs accepted for execution (including bulk chunks).
    pub submitted: u64,
    /// Jobs that completed with a value.
    pub completed: u64,
    /// Jobs that finished cancelled.
    pub cancelled: u64,
    /// Jobs whose program panicked (contained; see [`JobError::Panicked`]).
    pub panicked: u64,
    /// Spec submissions rejected before reaching a worker (parse/validate
    /// failures, root-arity mismatches; see [`JobError::Rejected`]).
    pub rejected: u64,
    /// Spec sources compiled ([`Runtime::submit_spec`] cache misses).
    pub spec_compiles: u64,
    /// Spec submissions served from the compile-once cache.
    pub spec_cache_hits: u64,
    /// Jobs occupying pool slots (running or parking) at snapshot time.
    pub inflight: usize,
    /// Jobs accepted but waiting for a pool slot, at snapshot time.
    pub waiting: usize,
    /// Preempted jobs currently swapped out, at snapshot time.
    pub parked: usize,
    /// Tasks held by swapped-out frontiers, at snapshot time.
    pub parked_tasks: usize,
    /// Times any job was swapped out at a superstep boundary.
    pub preemptions: u64,
    /// Times a swapped-out job was resumed.
    pub resumes: u64,
    /// The pool-side running bound ([`RuntimeConfig::max_inflight`]).
    pub max_inflight: usize,
    /// The park-pool bound ([`RuntimeConfig::max_parked`]).
    pub max_parked: usize,
    /// Times a submitter blocked on its tenant's gate (backpressure).
    pub backpressure_waits: u64,
    /// Per-tenant queue depths and counters, indexed by [`TenantId`].
    pub tenants: Vec<TenantSnapshot>,
    /// Submission-path counters of the pool's segmented injector.
    /// `injector.full_waits == 0` is the "submission never spin-blocks"
    /// invariant.
    pub injector: InjectorMetrics,
    /// Trace events lost to ring overflow or torn drains, process-wide
    /// (`tb_obs`); 0 when tracing is disabled.
    pub dropped_events: u64,
    /// Bytes of trace events recorded process-wide (`tb_obs`); 0 when
    /// tracing is disabled.
    pub trace_bytes: u64,
}

/// What [`Runtime::load`] reports: the signals a placement layer ranks
/// sibling runtimes by. All readings are racy snapshots — preferences,
/// not bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeLoad {
    /// Jobs queued in the pool's injector, not yet claimed by a worker.
    pub injector_depth: usize,
    /// Pool workers currently awake.
    pub active_workers: usize,
    /// Total pool workers.
    pub threads: usize,
    /// Jobs occupying pool slots (running or preempting).
    pub running: usize,
    /// Jobs admitted past their gate but waiting for a pool slot.
    pub waiting: usize,
    /// Preempted jobs currently swapped out.
    pub parked: usize,
}

impl RuntimeLoad {
    /// The scalar a placement layer compares siblings by: queued work
    /// (injector + admission queue) plus work in flight.
    pub fn depth(&self) -> usize {
        self.injector_depth + self.waiting + self.running
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
    rejected: AtomicU64,
    spec_compiles: AtomicU64,
    spec_cache_hits: AtomicU64,
}

impl Counters {
    fn finish(&self, outcome: &Result<(), JobError>) {
        match outcome {
            Ok(()) => self.completed.fetch_add(1, Ordering::Relaxed),
            Err(JobError::Cancelled) => self.cancelled.fetch_add(1, Ordering::Relaxed),
            Err(JobError::Panicked) => self.panicked.fetch_add(1, Ordering::Relaxed),
            // Rejections never reach a worker (nothing was admitted), so
            // this arm is unreachable from `finish` callers; counted
            // defensively all the same.
            Err(JobError::Rejected(_)) => self.rejected.fetch_add(1, Ordering::Relaxed),
        };
    }
}

struct Inner {
    pool: ThreadPool,
    // The admission scheduler and counters are their own `Arc`s — job
    // closures capture *these*, never `Inner`, so a worker can never hold
    // the last reference to the pool it runs on (which would make
    // `ThreadPool::drop` join the worker's own thread). Follow-on jobs the
    // scheduler releases from a worker-side completion are spawned through
    // `WorkerCtx::spawn` for the same reason.
    admission: Arc<Admission>,
    counters: Arc<Counters>,
    // Compile-once cache for `submit_spec`: source text -> lowered code.
    // Keyed by the exact source string (no hashing shortcuts: a collision
    // would silently run the wrong program). Guarded by a plain mutex —
    // compilation is microseconds and submissions are already a
    // gate-crossing slow path.
    spec_cache: parking_lot::Mutex<SpecCache>,
}

/// Bound on distinct cached sources: a client stream of trivially-varying
/// programs must not balloon a long-lived runtime's memory. At the cap the
/// least-recently-*used* entry is evicted, so a hot program survives any
/// number of cold one-shot submissions around it (the ROADMAP "spec-cache
/// eviction" item; per-client quotas remain future work).
const SPEC_CACHE_CAP: usize = 1024;

/// A true-LRU compile cache: every hit restamps its entry with a monotone
/// tick, and insertion past [`SPEC_CACHE_CAP`] evicts the entry with the
/// oldest stamp. The O(cap) eviction scan only runs on a cold-source
/// insert *at* capacity — off the hit path, and microseconds against the
/// compile that preceded it.
#[derive(Default)]
struct SpecCache {
    map: std::collections::HashMap<Box<str>, (Arc<SpecCode>, u64)>,
    tick: u64,
}

impl SpecCache {
    fn get(&mut self, source: &str) -> Option<Arc<SpecCode>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(source).map(|(code, stamp)| {
            *stamp = tick;
            Arc::clone(code)
        })
    }

    /// Insert freshly compiled `code`, returning the `Arc` submissions
    /// should run: the incumbent if another submitter raced us compiling
    /// the same source (so every handle shares one `Arc`), else `code`.
    fn insert(&mut self, source: &str, code: Arc<SpecCode>) -> Arc<SpecCode> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((cached, stamp)) = self.map.get_mut(source) {
            *stamp = tick;
            return Arc::clone(cached);
        }
        if self.map.len() >= SPEC_CACHE_CAP {
            if let Some(oldest) = self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(source.into(), (Arc::clone(&code), tick));
        code
    }
}

/// A persistent, multi-tenant front-end over one work-stealing pool.
///
/// Where `ThreadPool::install` is one-program-one-caller-blocks, a
/// `Runtime` multiplexes many concurrent clients: any thread submits any
/// [`BlockProgram`] (each with its own [`SchedConfig`] and
/// [`SchedulerKind`], so basic, re-expansion and restart jobs coexist),
/// gets back a [`JobHandle`] to poll, block on, or cancel, and the
/// admission scheduler pushes overload back on the submitting *tenant*
/// instead of letting queues grow without bound or letting one tenant
/// starve the rest. Cloning is cheap and shares the pool.
///
/// Registered tenants ([`Runtime::register_tenant`]) get weighted fair
/// admission within their priority class and strict priority across
/// classes; [`Runtime::submit_preemptible`] jobs additionally park at
/// superstep boundaries when a higher-priority tenant needs their slot,
/// and resume later with bit-identical results. See the crate docs and
/// DESIGN.md §9.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<Inner>,
}

impl Runtime {
    /// A runtime with `threads` workers and the default backpressure bound.
    pub fn new(threads: usize) -> Self {
        Self::with_config(RuntimeConfig { threads, ..RuntimeConfig::default() })
    }

    /// A runtime from explicit parameters.
    pub fn with_config(cfg: RuntimeConfig) -> Self {
        let admission = Arc::new(Admission::new(AdmissionPolicy {
            max_running: cfg.max_inflight.max(1),
            max_parked: cfg.max_parked,
            fifo: cfg.fifo,
        }));
        let default = admission.add_tenant(TenantSpec::new("default", cfg.max_inflight.max(1)));
        debug_assert_eq!(default, DEFAULT_TENANT);
        Runtime {
            inner: Arc::new(Inner {
                pool: ThreadPool::new(cfg.threads),
                admission,
                counters: Arc::new(Counters::default()),
                spec_cache: parking_lot::Mutex::new(SpecCache::default()),
            }),
        }
    }

    /// Register a tenant with its own weight, priority and submit-side
    /// bound. Returns the id to pass to [`Runtime::submit_as`] and
    /// friends. Tenants cannot be unregistered (ids are dense and stats
    /// are indexed by them); a long-lived service registers its client
    /// classes once at startup.
    pub fn register_tenant(&self, spec: TenantSpec) -> TenantId {
        self.inner.admission.add_tenant(spec)
    }

    /// Worker threads in the shared pool.
    pub fn threads(&self) -> usize {
        self.inner.pool.threads()
    }

    /// Jobs queued in the pool's injector, not yet claimed by a worker.
    pub fn pending_jobs(&self) -> usize {
        self.inner.pool.pending_jobs()
    }

    /// A cheap point-in-time load probe of this runtime, for placement
    /// across sibling runtimes ([`crate::shard::ShardedRuntime`]): the
    /// pool's injector depth and awake-worker count plus the admission
    /// scheduler's queue depths. Two mutex acquisitions, no allocation —
    /// orders of magnitude lighter than [`Runtime::stats`].
    pub fn load(&self) -> RuntimeLoad {
        let pool = self.inner.pool.load();
        let (running, waiting, parked, _) = self.inner.admission.queue_depths();
        RuntimeLoad {
            injector_depth: pool.injector_depth,
            active_workers: pool.active_workers,
            threads: pool.threads,
            running,
            waiting,
            parked,
        }
    }

    /// Install the per-completion observer (see
    /// [`crate::sched::FinishObserver`]); called once by the sharded
    /// front-end that owns this runtime.
    pub(crate) fn set_finish_observer(&self, f: FinishObserver) {
        self.inner.admission.set_finish_observer(f);
    }

    /// Lifetime counters snapshot.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        let adm = &self.inner.admission;
        let (inflight, waiting, parked, parked_tasks) = adm.queue_depths();
        let policy = adm.policy();
        let (preemptions, resumes) = adm.preemption_totals();
        let (dropped_events, trace_bytes) = tb_obs::trace_totals();
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            spec_compiles: c.spec_compiles.load(Ordering::Relaxed),
            spec_cache_hits: c.spec_cache_hits.load(Ordering::Relaxed),
            inflight,
            waiting,
            parked,
            parked_tasks,
            preemptions,
            resumes,
            max_inflight: policy.max_running,
            max_parked: policy.max_parked,
            backpressure_waits: adm.backpressure_waits(),
            tenants: adm.snapshot(),
            injector: self.inner.pool.injector_metrics(),
            dropped_events,
            trace_bytes,
        }
    }

    /// Submit `prog` to run under `kind` with `cfg` as the default tenant,
    /// blocking only if that tenant is at its pending bound (the
    /// backpressure gate). Returns immediately with a handle; the run
    /// happens on the pool.
    ///
    /// Scheduler choice per job: [`SchedulerKind::Seq`],
    /// [`SchedulerKind::ReExpansion`] and [`SchedulerKind::RestartSimplified`]
    /// are pool-resident and compose freely;
    /// [`SchedulerKind::RestartIdeal`] spawns its own dedicated threads per
    /// job (see `run_scheduler_on_ctx`) and is meant for measurement, not
    /// service traffic.
    pub fn submit<P>(&self, prog: P, cfg: SchedConfig, kind: SchedulerKind) -> JobHandle<P::Reducer>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        self.submit_as(DEFAULT_TENANT, prog, cfg, kind)
    }

    /// Like [`Runtime::submit`], but sheds load instead of blocking: when
    /// the tenant is at its pending bound the program is handed back
    /// unchanged.
    pub fn try_submit<P>(
        &self,
        prog: P,
        cfg: SchedConfig,
        kind: SchedulerKind,
    ) -> Result<JobHandle<P::Reducer>, P>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        self.try_submit_as(DEFAULT_TENANT, prog, cfg, kind)
    }

    /// [`Runtime::submit`] on behalf of a registered tenant: admission
    /// order follows the tenant's weight within its priority class and
    /// strict priority across classes; saturation blocks only `tenant`'s
    /// own submitters.
    ///
    /// # Panics
    /// If `tenant` was never registered.
    pub fn submit_as<P>(
        &self,
        tenant: TenantId,
        prog: P,
        cfg: SchedConfig,
        kind: SchedulerKind,
    ) -> JobHandle<P::Reducer>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        self.inner.admission.gate(tenant).acquire();
        self.spawn_admitted_as(tenant, prog, cfg, kind)
    }

    /// [`Runtime::try_submit`] on behalf of a registered tenant.
    ///
    /// # Panics
    /// If `tenant` was never registered.
    pub fn try_submit_as<P>(
        &self,
        tenant: TenantId,
        prog: P,
        cfg: SchedConfig,
        kind: SchedulerKind,
    ) -> Result<JobHandle<P::Reducer>, P>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        if !self.inner.admission.gate(tenant).try_acquire() {
            return Err(prog);
        }
        Ok(self.spawn_admitted_as(tenant, prog, cfg, kind))
    }

    /// Submit a *preemptible* job for `tenant`: the program runs under the
    /// sequential stepping engine on one worker, and when a
    /// higher-priority tenant needs the slot the scheduler asks it to park
    /// at its next superstep boundary — its frontier moves into the
    /// bounded park pool, the slot frees, and the job resumes later with
    /// **bit-identical results** to an uninterrupted run (the park/resume
    /// round-trip property; see `tests/preempt_equiv.rs`).
    ///
    /// This is the submission path for batch work that should yield to
    /// interactive traffic. Parallel scheduler jobs ([`Runtime::submit`])
    /// are never preempted — they occupy their slot until completion.
    ///
    /// # Panics
    /// If `tenant` was never registered.
    pub fn submit_preemptible<P>(&self, tenant: TenantId, prog: P, cfg: SchedConfig) -> JobHandle<P::Reducer>
    where
        P: BlockProgram + Send + 'static,
        P::Store: Send + 'static,
        P::Reducer: Send + 'static,
    {
        self.inner.admission.gate(tenant).acquire();
        self.enqueue_preemptible(tenant, prog, cfg)
    }

    /// Like [`Runtime::submit_preemptible`], but sheds load instead of
    /// blocking when `tenant` is at its pending bound.
    ///
    /// # Panics
    /// If `tenant` was never registered.
    pub fn try_submit_preemptible<P>(
        &self,
        tenant: TenantId,
        prog: P,
        cfg: SchedConfig,
    ) -> Result<JobHandle<P::Reducer>, P>
    where
        P: BlockProgram + Send + 'static,
        P::Store: Send + 'static,
        P::Reducer: Send + 'static,
    {
        if !self.inner.admission.gate(tenant).try_acquire() {
            return Err(prog);
        }
        Ok(self.enqueue_preemptible(tenant, prog, cfg))
    }

    /// Submit a plain closure as a job (no scheduler run): `f` executes on
    /// one worker; the handle behaves like any job handle. Cancelling
    /// before a worker picks the job up skips `f` entirely; once `f` is
    /// running it is not interrupted (closures have no block boundaries to
    /// cancel at).
    pub fn submit_fn<R, F>(&self, f: F) -> JobHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.inner.admission.gate(DEFAULT_TENANT).acquire();
        self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(JobCore::new());
        let token = core.cancel_token();
        let (worker_core, adm, counters) =
            (Arc::clone(&core), Arc::clone(&self.inner.admission), Arc::clone(&self.inner.counters));
        let (_, ready) = self.inner.admission.enqueue(DEFAULT_TENANT, false, None, move |id| {
            Box::new(move |ctx: &WorkerCtx<'_>| {
                let result = if token.is_cancelled() {
                    Err(JobError::Cancelled)
                } else {
                    match catch_unwind(AssertUnwindSafe(f)) {
                        Ok(v) => Ok(v),
                        Err(_) => Err(JobError::Panicked),
                    }
                };
                counters.finish(&result.as_ref().map(|_| ()).map_err(Clone::clone));
                for job in adm.finished(id) {
                    ctx.spawn(job);
                }
                worker_core.complete(result);
            })
        });
        self.dispatch(ready);
        JobHandle::new(core)
    }

    /// Submit a spec-language program *as source text*: the runtime
    /// parses, validates and lowers it through [`tb_spec::compile()`] once,
    /// then schedules the compiled program under `kind` like any other
    /// job. This is the "work the service has never seen before" path —
    /// a client ships a program, not a type.
    ///
    /// Compilation is cached by source text: resubmitting the same source
    /// (any args) reuses the lowered instruction stream
    /// ([`ServiceStats::spec_cache_hits`]).
    ///
    /// Errors never panic a worker: a source that fails to parse or
    /// validate, or a root tuple whose length does not match the method's
    /// parameter count, completes the returned handle immediately with
    /// [`JobError::Rejected`] carrying the located diagnostic (for parse
    /// errors, a caret line into the client's source).
    /// Execution tier: [`SpecTier::Auto`] picks the vector tier at the
    /// host's detected lane width (`tb_spec::detected_lane_width`) and the
    /// scalar tier on SIMD-less hosts — safe because the tiers are
    /// bit-identical; [`Runtime::submit_spec_tier`] pins one explicitly.
    pub fn submit_spec(
        &self,
        source: &str,
        args: Vec<i64>,
        cfg: SchedConfig,
        kind: SchedulerKind,
    ) -> JobHandle<i64> {
        self.submit_spec_foreach_tier(source, vec![args], cfg, kind, SpecTier::Auto)
    }

    /// Like [`Runtime::submit_spec`] with an explicit execution tier
    /// (scalar instruction loop vs `Q`-lane masked vector execution).
    pub fn submit_spec_tier(
        &self,
        source: &str,
        args: Vec<i64>,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: SpecTier,
    ) -> JobHandle<i64> {
        self.submit_spec_foreach_tier(source, vec![args], cfg, kind, tier)
    }

    /// Like [`Runtime::submit_spec`], but over a §5.2 data-parallel
    /// `foreach`: one level-0 task per argument tuple, strip-mined by the
    /// scheduler. Runs at the [`SpecTier::Auto`] execution tier.
    pub fn submit_spec_foreach(
        &self,
        source: &str,
        calls: Vec<Vec<i64>>,
        cfg: SchedConfig,
        kind: SchedulerKind,
    ) -> JobHandle<i64> {
        self.submit_spec_foreach_tier(source, calls, cfg, kind, SpecTier::Auto)
    }

    /// Like [`Runtime::submit_spec_foreach`] with an explicit execution
    /// tier.
    pub fn submit_spec_foreach_tier(
        &self,
        source: &str,
        calls: Vec<Vec<i64>>,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: SpecTier,
    ) -> JobHandle<i64> {
        self.submit_spec_foreach_tier_as(DEFAULT_TENANT, source, calls, cfg, kind, tier)
    }

    /// [`Runtime::submit_spec_foreach_tier`] on behalf of a registered
    /// tenant: the submission passes `tenant`'s gate and is scheduled
    /// under its weight and priority. Parse/validate/arity failures
    /// complete the handle with [`JobError::Rejected`] without consuming
    /// a gate slot.
    ///
    /// # Panics
    /// If `tenant` was never registered.
    pub fn submit_spec_foreach_tier_as(
        &self,
        tenant: TenantId,
        source: &str,
        calls: Vec<Vec<i64>>,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: SpecTier,
    ) -> JobHandle<i64> {
        let code = match self.validate_spec(source, &calls) {
            Ok(code) => code,
            Err(diag) => return self.reject(tenant, diag),
        };
        self.inner.admission.gate(tenant).acquire();
        self.spawn_spec_admitted(tenant, code, calls, cfg, kind, tier)
    }

    /// Like [`Runtime::submit_spec_foreach_tier_as`], but sheds load
    /// instead of blocking: when `tenant` is at its pending bound the root
    /// calls are handed back unchanged. A source that fails to
    /// parse/validate still returns `Ok` with a handle completed as
    /// [`JobError::Rejected`] — `Err` means *capacity*, nothing else.
    ///
    /// # Panics
    /// If `tenant` was never registered.
    pub fn try_submit_spec_foreach_tier_as(
        &self,
        tenant: TenantId,
        source: &str,
        calls: Vec<Vec<i64>>,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: SpecTier,
    ) -> Result<JobHandle<i64>, Vec<Vec<i64>>> {
        let code = match self.validate_spec(source, &calls) {
            Ok(code) => code,
            Err(diag) => return Ok(self.reject(tenant, diag)),
        };
        if !self.inner.admission.gate(tenant).try_acquire() {
            return Err(calls);
        }
        Ok(self.spawn_spec_admitted(tenant, code, calls, cfg, kind, tier))
    }

    /// Compile `source` (cached) and check every root call's arity.
    fn validate_spec(&self, source: &str, calls: &[Vec<i64>]) -> Result<Arc<SpecCode>, String> {
        let code = self.compile_cached(source)?;
        if let Some(bad) = calls.iter().find(|c| c.len() != code.params()) {
            return Err(format!(
                "root call supplies {} args, method {} has {} params",
                bad.len(),
                code.name(),
                code.params()
            ));
        }
        Ok(code)
    }

    /// Dispatch validated, gated spec code at `tier`.
    fn spawn_spec_admitted(
        &self,
        tenant: TenantId,
        code: Arc<SpecCode>,
        calls: Vec<Vec<i64>>,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: SpecTier,
    ) -> JobHandle<i64> {
        // arg0 = effective lane width (1 = scalar tier), arg = root calls.
        tb_obs::record(EventKind::SpecDispatch, tier.lane_width().max(1) as u32, calls.len() as u64);
        match tier.lane_width() {
            0 | 1 => self.spawn_admitted_as(tenant, CompiledSpec::from_code(code, &calls), cfg, kind),
            q => self.spawn_admitted_as(tenant, VectorSpec::from_code_with_width(code, &calls, q), cfg, kind),
        }
    }

    /// Look up `source` in the compile-once LRU cache, lowering on a miss.
    /// The diagnostic string on failure is [`JobError::Rejected`] payload.
    fn compile_cached(&self, source: &str) -> Result<Arc<SpecCode>, String> {
        if let Some(code) = self.inner.spec_cache.lock().get(source) {
            self.inner.counters.spec_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(code);
        }
        // Parse/compile outside the lock: a client submitting a huge or
        // malformed source must not stall other submitters' cache hits.
        let spec = parse_spec(source).map_err(|e| e.to_string())?;
        let code = Arc::new(compile(&spec).map_err(|e| e.to_string())?);
        self.inner.counters.spec_compiles.fetch_add(1, Ordering::Relaxed);
        Ok(self.inner.spec_cache.lock().insert(source, code))
    }

    /// A handle pre-completed with [`JobError::Rejected`]; the job never
    /// existed as far as the scheduler and the pool are concerned. The
    /// finish observer still fires — a placement layer that booked this
    /// submission must see it retire.
    fn reject<R>(&self, tenant: TenantId, diagnostic: impl std::fmt::Display) -> JobHandle<R> {
        self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(JobCore::new());
        core.complete(Err(JobError::rejected(diagnostic)));
        self.inner.admission.notify_rejected(tenant);
        JobHandle::new(core)
    }

    /// Bulk data-parallel submission: cut `items` into chunks
    /// (DCAFE-style adaptive sizing — see [`BulkHandle`] — instead of one
    /// job per item), build a program for each chunk with `make`, and run
    /// every chunk as its own admitted job. The returned handle aggregates
    /// the per-chunk reductions in input order.
    ///
    /// Chunks pass the default tenant's backpressure gate like everything
    /// else, one slot per chunk, so a huge bulk submission blocks *its
    /// own* submitter once the tenant saturates rather than starving
    /// other tenants behind an unbounded queue.
    pub fn submit_bulk<I, P, F>(
        &self,
        items: Vec<I>,
        cfg: SchedConfig,
        kind: SchedulerKind,
        make: F,
    ) -> BulkHandle<P::Reducer>
    where
        I: Send + 'static,
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
        F: Fn(Vec<I>) -> P + Send + Sync + 'static,
    {
        let total = items.len();
        let chunk_len = adaptive_chunk_len(total, self.threads(), self.pending_jobs());
        // arg0 = adaptive chunk length chosen, arg = items being cut.
        tb_obs::record(EventKind::ChunkSize, chunk_len as u32, total as u64);
        let chunks = total.div_ceil(chunk_len.max(1));
        let core = Arc::new(BulkCore::new(chunks));
        let token = core.cancel_token();
        let make = Arc::new(make);
        let mut items = items;
        for index in 0..chunks {
            let rest = items.split_off(chunk_len.min(items.len()));
            let chunk = std::mem::replace(&mut items, rest);
            self.inner.admission.gate(DEFAULT_TENANT).acquire();
            self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
            let (core, token, make) = (Arc::clone(&core), token.clone(), Arc::clone(&make));
            let (adm, counters) = (Arc::clone(&self.inner.admission), Arc::clone(&self.inner.counters));
            let (_, ready) = self.inner.admission.enqueue(DEFAULT_TENANT, false, None, move |id| {
                Box::new(move |ctx: &WorkerCtx<'_>| {
                    // The chunk-builder runs inside the catch too: a panic in
                    // `make` must route to JobError::Panicked and free the
                    // admission slot, not escape to the pool's backstop.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let prog = Cancellable::new(make(chunk), token.clone());
                        run_scheduler_on_ctx(kind, &prog, cfg, ctx)
                    }));
                    let result = match outcome {
                        Ok(_) if token.is_cancelled() => Err(JobError::Cancelled),
                        Ok(out) => Ok(out.reducer),
                        Err(_) => Err(JobError::Panicked),
                    };
                    counters.finish(&result.as_ref().map(|_| ()).map_err(Clone::clone));
                    for job in adm.finished(id) {
                        ctx.spawn(job);
                    }
                    core.complete_chunk(index, result);
                })
            });
            self.dispatch(ready);
        }
        debug_assert!(items.is_empty(), "chunking consumed every item");
        BulkHandle::new(core, chunks)
    }

    /// Spawn jobs the scheduler released on a *client* path (we hold no
    /// worker context here). Worker-side completions use
    /// `WorkerCtx::spawn` instead — see [`drive_preemptible`] and the job
    /// closures.
    fn dispatch(&self, ready: Vec<crate::sched::ReadyJob>) {
        for job in ready {
            self.inner.pool.spawn(job);
        }
    }

    /// Enqueue an already-gated non-preemptible scheduler job for `tenant`.
    fn spawn_admitted_as<P>(
        &self,
        tenant: TenantId,
        prog: P,
        cfg: SchedConfig,
        kind: SchedulerKind,
    ) -> JobHandle<P::Reducer>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(JobCore::new());
        let token = core.cancel_token();
        let (worker_core, adm, counters) =
            (Arc::clone(&core), Arc::clone(&self.inner.admission), Arc::clone(&self.inner.counters));
        let (_, ready) = self.inner.admission.enqueue(tenant, false, None, move |id| {
            Box::new(move |ctx: &WorkerCtx<'_>| {
                let prog = Cancellable::new(prog, token.clone());
                let outcome = catch_unwind(AssertUnwindSafe(|| run_scheduler_on_ctx(kind, &prog, cfg, ctx)));
                let result = match outcome {
                    Ok(_) if token.is_cancelled() => Err(JobError::Cancelled),
                    Ok(out) => Ok(out.reducer),
                    Err(_) => Err(JobError::Panicked),
                };
                counters.finish(&result.as_ref().map(|_| ()).map_err(Clone::clone));
                for job in adm.finished(id) {
                    ctx.spawn(job);
                }
                worker_core.complete(result);
            })
        });
        self.dispatch(ready);
        JobHandle::new(core)
    }

    /// Enqueue an already-gated preemptible job for `tenant`.
    fn enqueue_preemptible<P>(&self, tenant: TenantId, prog: P, cfg: SchedConfig) -> JobHandle<P::Reducer>
    where
        P: BlockProgram + Send + 'static,
        P::Store: Send + 'static,
        P::Reducer: Send + 'static,
    {
        self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(JobCore::new());
        let token = core.cancel_token();
        let flag: PreemptFlag = Arc::new(AtomicBool::new(false));
        let (worker_core, adm, counters) =
            (Arc::clone(&core), Arc::clone(&self.inner.admission), Arc::clone(&self.inner.counters));
        let driver_flag = Arc::clone(&flag);
        let (_, ready) = self.inner.admission.enqueue(tenant, true, Some(flag), move |id| {
            let run = PreemptibleRun {
                prog: Cancellable::new(prog, token.clone()),
                frontier: None,
                cfg,
                core: worker_core,
                token,
                flag: driver_flag,
                adm,
                counters,
                id,
            };
            Box::new(move |ctx: &WorkerCtx<'_>| drive_preemptible(run, ctx))
        });
        self.dispatch(ready);
        JobHandle::new(core)
    }
}

/// Everything a preemptible job carries between run segments: the program,
/// the parked frontier (None before the first segment), and the handles it
/// reports through. The whole struct moves into the continuation closure
/// at every park, so a job's state lives either on a worker's stack (while
/// running) or in the scheduler's park pool (while swapped out) — never
/// both.
struct PreemptibleRun<P: BlockProgram> {
    prog: Cancellable<P>,
    frontier: Option<SeqFrontier<P::Store, P::Reducer>>,
    cfg: SchedConfig,
    core: Arc<JobCore<P::Reducer>>,
    token: CancelToken,
    flag: PreemptFlag,
    adm: Arc<Admission>,
    counters: Arc<Counters>,
    id: JobId,
}

/// How one run segment of a preemptible job ended.
enum Segment<S, R> {
    /// The program ran to completion (or drained after cancellation).
    Done(RunOutput<R>),
    /// The preempt flag fired: the engine parked at a superstep boundary.
    Parked(SeqFrontier<S, R>),
}

/// Run one segment of a preemptible job on the current worker: step the
/// sequential engine, checking the preempt flag **between supersteps** —
/// the paper's superstep structure is what makes this seam exact, because
/// between steps the engine's entire state is the frontier (deque + current
/// block + reducer), with no half-expanded block in flight.
fn drive_preemptible<P>(mut run: PreemptibleRun<P>, ctx: &WorkerCtx<'_>)
where
    P: BlockProgram + Send + 'static,
    P::Store: Send + 'static,
    P::Reducer: Send + 'static,
{
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut sched = match run.frontier.take() {
            Some(frontier) => SeqScheduler::resume(&run.prog, frontier),
            None => SeqScheduler::new(&run.prog, run.cfg),
        };
        while !sched.is_done() {
            // `swap` (not `load`) so a flag that fires while we are already
            // parking is consumed, not left to preempt the resumed segment
            // spuriously.
            if run.flag.swap(false, Ordering::AcqRel) {
                return Segment::Parked(sched.park());
            }
            sched.step();
        }
        Segment::Done(sched.into_output())
    }));
    match outcome {
        Ok(Segment::Parked(frontier)) => {
            let tasks = frontier.tasks();
            // arg = job id so the exporter can pair this with the
            // scheduler's Resume event into one cross-worker async span.
            // Recorded *before* `adm.parked` — the matching Resume action
            // cannot fire until the core learns of the park.
            tb_obs::record(EventKind::Park, tasks as u32, run.id);
            run.frontier = Some(frontier);
            let (adm, id) = (Arc::clone(&run.adm), run.id);
            let cont: crate::sched::ReadyJob =
                Box::new(move |ctx: &WorkerCtx<'_>| drive_preemptible(run, ctx));
            for job in adm.parked(id, tasks, cont) {
                ctx.spawn(job);
            }
        }
        Ok(Segment::Done(out)) => {
            tb_obs::record(EventKind::JobDone, 0, run.id);
            let result = if run.token.is_cancelled() { Err(JobError::Cancelled) } else { Ok(out.reducer) };
            run.counters.finish(&result.as_ref().map(|_| ()).map_err(Clone::clone));
            for job in run.adm.finished(run.id) {
                ctx.spawn(job);
            }
            run.core.complete(result);
        }
        Err(_) => {
            run.counters.finish(&Err(JobError::Panicked));
            for job in run.adm.finished(run.id) {
                ctx.spawn(job);
            }
            run.core.complete(Err(JobError::Panicked));
        }
    }
}
