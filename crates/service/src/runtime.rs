//! The long-lived, shared [`Runtime`]: one worker pool, many clients.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tb_core::{run_scheduler_on_ctx, BlockProgram, Cancellable, SchedConfig, SchedulerKind};
use tb_runtime::{InjectorMetrics, ThreadPool};
use tb_spec::{compile, parse_spec, CompiledSpec, SpecCode, SpecTier, VectorSpec};

use crate::bulk::{adaptive_chunk_len, BulkCore, BulkHandle};
use crate::gate::Gate;
use crate::handle::{JobCore, JobError, JobHandle};

/// Construction parameters for a [`Runtime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads in the shared pool. Defaults to the machine's
    /// available parallelism.
    pub threads: usize,
    /// Backpressure bound: admitted-but-incomplete jobs (scheduler jobs,
    /// closure jobs and bulk *chunks* all count as one each). Submissions
    /// beyond this block the submitting client until a slot frees.
    /// Defaults to `8 × threads` — enough depth to keep every worker fed
    /// through job-boundary gaps, small enough that queueing delay stays
    /// bounded by a few job service times.
    pub max_inflight: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        RuntimeConfig { threads, max_inflight: threads * 8 }
    }
}

/// Lifetime counters for a runtime (monotone, Relaxed; exact at quiescence).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Jobs admitted past the gate (including bulk chunks).
    pub submitted: u64,
    /// Jobs that completed with a value.
    pub completed: u64,
    /// Jobs that finished cancelled.
    pub cancelled: u64,
    /// Jobs whose program panicked (contained; see [`JobError::Panicked`]).
    pub panicked: u64,
    /// Spec submissions rejected before reaching a worker (parse/validate
    /// failures, root-arity mismatches; see [`JobError::Rejected`]).
    pub rejected: u64,
    /// Spec sources compiled ([`Runtime::submit_spec`] cache misses).
    pub spec_compiles: u64,
    /// Spec submissions served from the compile-once cache.
    pub spec_cache_hits: u64,
    /// Admitted jobs not yet finished, at snapshot time.
    pub inflight: usize,
    /// The gate's slot capacity.
    pub max_inflight: usize,
    /// Times a submitter blocked on the gate (backpressure engaged).
    pub backpressure_waits: u64,
    /// Submission-path counters of the pool's segmented injector.
    /// `injector.full_waits == 0` is the "submission never spin-blocks"
    /// invariant.
    pub injector: InjectorMetrics,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
    rejected: AtomicU64,
    spec_compiles: AtomicU64,
    spec_cache_hits: AtomicU64,
}

impl Counters {
    fn finish(&self, gate: &Gate, outcome: &Result<(), JobError>) {
        match outcome {
            Ok(()) => self.completed.fetch_add(1, Ordering::Relaxed),
            Err(JobError::Cancelled) => self.cancelled.fetch_add(1, Ordering::Relaxed),
            Err(JobError::Panicked) => self.panicked.fetch_add(1, Ordering::Relaxed),
            // Rejections never reach a worker (no gate slot to release),
            // so this arm is unreachable from `finish` callers; counted
            // defensively all the same.
            Err(JobError::Rejected(_)) => self.rejected.fetch_add(1, Ordering::Relaxed),
        };
        gate.release();
    }
}

struct Inner {
    pool: ThreadPool,
    // The gate and counters are their own `Arc`s — job closures capture
    // *these*, never `Inner`, so a worker can never hold the last reference
    // to the pool it runs on (which would make `ThreadPool::drop` join the
    // worker's own thread).
    gate: Arc<Gate>,
    counters: Arc<Counters>,
    // Compile-once cache for `submit_spec`: source text -> lowered code.
    // Keyed by the exact source string (no hashing shortcuts: a collision
    // would silently run the wrong program). Guarded by a plain mutex —
    // compilation is microseconds and submissions are already a
    // gate-crossing slow path.
    spec_cache: parking_lot::Mutex<SpecCache>,
}

/// Bound on distinct cached sources: a client stream of trivially-varying
/// programs must not balloon a long-lived runtime's memory. At the cap the
/// least-recently-*used* entry is evicted, so a hot program survives any
/// number of cold one-shot submissions around it (the ROADMAP "spec-cache
/// eviction" item; per-client quotas remain future work).
const SPEC_CACHE_CAP: usize = 1024;

/// A true-LRU compile cache: every hit restamps its entry with a monotone
/// tick, and insertion past [`SPEC_CACHE_CAP`] evicts the entry with the
/// oldest stamp. The O(cap) eviction scan only runs on a cold-source
/// insert *at* capacity — off the hit path, and microseconds against the
/// compile that preceded it.
#[derive(Default)]
struct SpecCache {
    map: std::collections::HashMap<Box<str>, (Arc<SpecCode>, u64)>,
    tick: u64,
}

impl SpecCache {
    fn get(&mut self, source: &str) -> Option<Arc<SpecCode>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(source).map(|(code, stamp)| {
            *stamp = tick;
            Arc::clone(code)
        })
    }

    /// Insert freshly compiled `code`, returning the `Arc` submissions
    /// should run: the incumbent if another submitter raced us compiling
    /// the same source (so every handle shares one `Arc`), else `code`.
    fn insert(&mut self, source: &str, code: Arc<SpecCode>) -> Arc<SpecCode> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((cached, stamp)) = self.map.get_mut(source) {
            *stamp = tick;
            return Arc::clone(cached);
        }
        if self.map.len() >= SPEC_CACHE_CAP {
            if let Some(oldest) = self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(source.into(), (Arc::clone(&code), tick));
        code
    }
}

/// A persistent, multi-tenant front-end over one work-stealing pool.
///
/// Where `ThreadPool::install` is one-program-one-caller-blocks, a
/// `Runtime` multiplexes many concurrent clients: any thread submits any
/// [`BlockProgram`] (each with its own [`SchedConfig`] and
/// [`SchedulerKind`], so basic, re-expansion and restart jobs coexist),
/// gets back a [`JobHandle`] to poll, block on, or cancel, and the
/// bounded-inflight gate pushes overload back on submitters instead of
/// letting queues grow without bound. Cloning is cheap and shares the pool.
///
/// See the crate docs for a complete example.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<Inner>,
}

impl Runtime {
    /// A runtime with `threads` workers and the default backpressure bound.
    pub fn new(threads: usize) -> Self {
        Self::with_config(RuntimeConfig { threads, ..RuntimeConfig::default() })
    }

    /// A runtime from explicit parameters.
    pub fn with_config(cfg: RuntimeConfig) -> Self {
        Runtime {
            inner: Arc::new(Inner {
                pool: ThreadPool::new(cfg.threads),
                gate: Arc::new(Gate::new(cfg.max_inflight)),
                counters: Arc::new(Counters::default()),
                spec_cache: parking_lot::Mutex::new(SpecCache::default()),
            }),
        }
    }

    /// Worker threads in the shared pool.
    pub fn threads(&self) -> usize {
        self.inner.pool.threads()
    }

    /// Jobs queued in the pool's injector, not yet claimed by a worker.
    pub fn pending_jobs(&self) -> usize {
        self.inner.pool.pending_jobs()
    }

    /// Lifetime counters snapshot.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            spec_compiles: c.spec_compiles.load(Ordering::Relaxed),
            spec_cache_hits: c.spec_cache_hits.load(Ordering::Relaxed),
            inflight: self.inner.gate.inflight(),
            max_inflight: self.inner.gate.max(),
            backpressure_waits: self.inner.gate.blocked(),
            injector: self.inner.pool.injector_metrics(),
        }
    }

    /// Submit `prog` to run under `kind` with `cfg`, blocking only if the
    /// runtime is saturated (the backpressure gate). Returns immediately
    /// with a handle; the run happens on the pool.
    ///
    /// Scheduler choice per job: [`SchedulerKind::Seq`],
    /// [`SchedulerKind::ReExpansion`] and [`SchedulerKind::RestartSimplified`]
    /// are pool-resident and compose freely;
    /// [`SchedulerKind::RestartIdeal`] spawns its own dedicated threads per
    /// job (see `run_scheduler_on_ctx`) and is meant for measurement, not
    /// service traffic.
    pub fn submit<P>(&self, prog: P, cfg: SchedConfig, kind: SchedulerKind) -> JobHandle<P::Reducer>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        self.inner.gate.acquire();
        self.spawn_admitted(prog, cfg, kind)
    }

    /// Like [`Runtime::submit`], but sheds load instead of blocking: when
    /// the runtime is saturated the program is handed back unchanged.
    pub fn try_submit<P>(
        &self,
        prog: P,
        cfg: SchedConfig,
        kind: SchedulerKind,
    ) -> Result<JobHandle<P::Reducer>, P>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        if !self.inner.gate.try_acquire() {
            return Err(prog);
        }
        Ok(self.spawn_admitted(prog, cfg, kind))
    }

    /// Submit a plain closure as a job (no scheduler run): `f` executes on
    /// one worker; the handle behaves like any job handle. Cancelling
    /// before a worker picks the job up skips `f` entirely; once `f` is
    /// running it is not interrupted (closures have no block boundaries to
    /// cancel at).
    pub fn submit_fn<R, F>(&self, f: F) -> JobHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.inner.gate.acquire();
        self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(JobCore::new());
        let token = core.cancel_token();
        let (worker_core, gate, counters) =
            (Arc::clone(&core), Arc::clone(&self.inner.gate), Arc::clone(&self.inner.counters));
        self.inner.pool.spawn(move |_ctx| {
            let result = if token.is_cancelled() {
                Err(JobError::Cancelled)
            } else {
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => Ok(v),
                    Err(_) => Err(JobError::Panicked),
                }
            };
            counters.finish(&gate, &result.as_ref().map(|_| ()).map_err(Clone::clone));
            worker_core.complete(result);
        });
        JobHandle::new(core)
    }

    /// Submit a spec-language program *as source text*: the runtime
    /// parses, validates and lowers it through [`tb_spec::compile()`] once,
    /// then schedules the compiled program under `kind` like any other
    /// job. This is the "work the service has never seen before" path —
    /// a client ships a program, not a type.
    ///
    /// Compilation is cached by source text: resubmitting the same source
    /// (any args) reuses the lowered instruction stream
    /// ([`ServiceStats::spec_cache_hits`]).
    ///
    /// Errors never panic a worker: a source that fails to parse or
    /// validate, or a root tuple whose length does not match the method's
    /// parameter count, completes the returned handle immediately with
    /// [`JobError::Rejected`] carrying the located diagnostic (for parse
    /// errors, a caret line into the client's source).
    /// Execution tier: [`SpecTier::Auto`] picks the vector tier at the
    /// host's detected lane width (`tb_spec::detected_lane_width`) and the
    /// scalar tier on SIMD-less hosts — safe because the tiers are
    /// bit-identical; [`Runtime::submit_spec_tier`] pins one explicitly.
    pub fn submit_spec(
        &self,
        source: &str,
        args: Vec<i64>,
        cfg: SchedConfig,
        kind: SchedulerKind,
    ) -> JobHandle<i64> {
        self.submit_spec_foreach_tier(source, vec![args], cfg, kind, SpecTier::Auto)
    }

    /// Like [`Runtime::submit_spec`] with an explicit execution tier
    /// (scalar instruction loop vs `Q`-lane masked vector execution).
    pub fn submit_spec_tier(
        &self,
        source: &str,
        args: Vec<i64>,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: SpecTier,
    ) -> JobHandle<i64> {
        self.submit_spec_foreach_tier(source, vec![args], cfg, kind, tier)
    }

    /// Like [`Runtime::submit_spec`], but over a §5.2 data-parallel
    /// `foreach`: one level-0 task per argument tuple, strip-mined by the
    /// scheduler. Runs at the [`SpecTier::Auto`] execution tier.
    pub fn submit_spec_foreach(
        &self,
        source: &str,
        calls: Vec<Vec<i64>>,
        cfg: SchedConfig,
        kind: SchedulerKind,
    ) -> JobHandle<i64> {
        self.submit_spec_foreach_tier(source, calls, cfg, kind, SpecTier::Auto)
    }

    /// Like [`Runtime::submit_spec_foreach`] with an explicit execution
    /// tier.
    pub fn submit_spec_foreach_tier(
        &self,
        source: &str,
        calls: Vec<Vec<i64>>,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: SpecTier,
    ) -> JobHandle<i64> {
        let code = match self.compile_cached(source) {
            Ok(code) => code,
            Err(diag) => return self.reject(diag),
        };
        if let Some(bad) = calls.iter().find(|c| c.len() != code.params()) {
            return self.reject(format!(
                "root call supplies {} args, method {} has {} params",
                bad.len(),
                code.name(),
                code.params()
            ));
        }
        self.inner.gate.acquire();
        match tier.lane_width() {
            0 | 1 => self.spawn_admitted(CompiledSpec::from_code(code, &calls), cfg, kind),
            q => self.spawn_admitted(VectorSpec::from_code_with_width(code, &calls, q), cfg, kind),
        }
    }

    /// Look up `source` in the compile-once LRU cache, lowering on a miss.
    /// The diagnostic string on failure is [`JobError::Rejected`] payload.
    fn compile_cached(&self, source: &str) -> Result<Arc<SpecCode>, String> {
        if let Some(code) = self.inner.spec_cache.lock().get(source) {
            self.inner.counters.spec_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(code);
        }
        // Parse/compile outside the lock: a client submitting a huge or
        // malformed source must not stall other submitters' cache hits.
        let spec = parse_spec(source).map_err(|e| e.to_string())?;
        let code = Arc::new(compile(&spec).map_err(|e| e.to_string())?);
        self.inner.counters.spec_compiles.fetch_add(1, Ordering::Relaxed);
        Ok(self.inner.spec_cache.lock().insert(source, code))
    }

    /// A handle pre-completed with [`JobError::Rejected`]; the job never
    /// existed as far as the gate and the pool are concerned.
    fn reject<R>(&self, diagnostic: impl std::fmt::Display) -> JobHandle<R> {
        self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(JobCore::new());
        core.complete(Err(JobError::rejected(diagnostic)));
        JobHandle::new(core)
    }

    /// Bulk data-parallel submission: cut `items` into chunks
    /// (DCAFE-style adaptive sizing — see [`BulkHandle`] — instead of one
    /// job per item), build a program for each chunk with `make`, and run
    /// every chunk as its own gated job. The returned handle aggregates the
    /// per-chunk reductions in input order.
    ///
    /// Chunks pass the same backpressure gate as everything else, one slot
    /// per chunk, so a huge bulk submission blocks *its own* submitter once
    /// the runtime saturates rather than starving interactive jobs behind
    /// an unbounded queue.
    pub fn submit_bulk<I, P, F>(
        &self,
        items: Vec<I>,
        cfg: SchedConfig,
        kind: SchedulerKind,
        make: F,
    ) -> BulkHandle<P::Reducer>
    where
        I: Send + 'static,
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
        F: Fn(Vec<I>) -> P + Send + Sync + 'static,
    {
        let total = items.len();
        let chunk_len = adaptive_chunk_len(total, self.threads(), self.pending_jobs());
        let chunks = total.div_ceil(chunk_len.max(1));
        let core = Arc::new(BulkCore::new(chunks));
        let token = core.cancel_token();
        let make = Arc::new(make);
        let mut items = items;
        for index in 0..chunks {
            let rest = items.split_off(chunk_len.min(items.len()));
            let chunk = std::mem::replace(&mut items, rest);
            self.inner.gate.acquire();
            self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
            let (core, token, make) = (Arc::clone(&core), token.clone(), Arc::clone(&make));
            let (gate, counters) = (Arc::clone(&self.inner.gate), Arc::clone(&self.inner.counters));
            self.inner.pool.spawn(move |ctx| {
                // The chunk-builder runs inside the catch too: a panic in
                // `make` must route to JobError::Panicked and release the
                // gate slot, not escape to the pool's backstop.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let prog = Cancellable::new(make(chunk), token.clone());
                    run_scheduler_on_ctx(kind, &prog, cfg, ctx)
                }));
                let result = match outcome {
                    Ok(_) if token.is_cancelled() => Err(JobError::Cancelled),
                    Ok(out) => Ok(out.reducer),
                    Err(_) => Err(JobError::Panicked),
                };
                counters.finish(&gate, &result.as_ref().map(|_| ()).map_err(Clone::clone));
                core.complete_chunk(index, result);
            });
        }
        debug_assert!(items.is_empty(), "chunking consumed every item");
        BulkHandle::new(core, chunks)
    }

    fn spawn_admitted<P>(&self, prog: P, cfg: SchedConfig, kind: SchedulerKind) -> JobHandle<P::Reducer>
    where
        P: BlockProgram + Send + 'static,
        P::Reducer: Send + 'static,
    {
        self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(JobCore::new());
        let token = core.cancel_token();
        let (worker_core, gate, counters) =
            (Arc::clone(&core), Arc::clone(&self.inner.gate), Arc::clone(&self.inner.counters));
        self.inner.pool.spawn(move |ctx| {
            let prog = Cancellable::new(prog, token.clone());
            let outcome = catch_unwind(AssertUnwindSafe(|| run_scheduler_on_ctx(kind, &prog, cfg, ctx)));
            let result = match outcome {
                Ok(_) if token.is_cancelled() => Err(JobError::Cancelled),
                Ok(out) => Ok(out.reducer),
                Err(_) => Err(JobError::Panicked),
            };
            counters.finish(&gate, &result.as_ref().map(|_| ()).map_err(Clone::clone));
            worker_core.complete(result);
        });
        JobHandle::new(core)
    }
}
