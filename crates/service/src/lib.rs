//! # tb-service — a persistent multi-tenant runtime front-end
//!
//! The paper's schedulers assume one program, one `install`, one pool
//! lifetime. This crate is the production-facing layer on top: a
//! long-lived [`Runtime`] that owns one work-stealing pool and multiplexes
//! many concurrent clients over it —
//!
//! * **job handles** — submit any [`BlockProgram`](tb_core::BlockProgram)
//!   from any thread and get a [`JobHandle`] back: poll it, block on it, or
//!   cancel it cooperatively (see `tb_core::cancel`);
//! * **per-job scheduling** — every job carries its own
//!   [`SchedConfig`](tb_core::SchedConfig) and
//!   [`SchedulerKind`](tb_core::SchedulerKind), so basic, re-expansion and
//!   restart jobs coexist on one pool;
//! * **bulk submission** — [`Runtime::submit_bulk`] cuts an input slice
//!   into adaptively sized chunks (per DCAFE: chunk size grows with queue
//!   depth, never one-task-per-item flooding);
//! * **multi-tenant admission** — every job belongs to a tenant
//!   ([`TenantSpec`]: weight, strict priority, pending bound). The
//!   admission scheduler ([`sched`]) splits pool slots by weight within a
//!   priority class (stride-style deficit accounting, so a flooding heavy
//!   tenant cannot starve a light one) and strictly by priority across
//!   classes, while per-tenant gates block or shed each tenant's *own*
//!   oversubscribing clients; the pool's *segmented unbounded* injector
//!   (`tb_runtime::injector`) guarantees admitted submissions never
//!   spin-block;
//! * **preemptible jobs** — [`Runtime::submit_preemptible`] work parks at
//!   a superstep boundary when a higher-priority tenant needs its slot:
//!   the job's frontier swaps out into a bounded park pool and resumes
//!   later with bit-identical results (the paper's superstep structure is
//!   the preemption seam — between supersteps the engine's entire state
//!   is its frontier);
//! * **spec-source jobs** — [`Runtime::submit_spec`] accepts a program the
//!   service has never seen before as spec-language *source text*: the
//!   runtime parses, validates and lowers it once (`tb_spec::compile`,
//!   cached by source), schedules the compiled program under any
//!   scheduler kind, and surfaces parse/validate failures through the
//!   handle as [`JobError::Rejected`] caret diagnostics instead of
//!   panicking a worker.
//!
//! ```
//! use tb_core::prelude::*;
//! use tb_service::Runtime;
//!
//! let rt = Runtime::new(2);
//! let h = rt.submit_spec(
//!     "spec fib(n) { base (n < 2) { reduce n; } else { spawn fib(n - 1); spawn fib(n - 2); } }",
//!     vec![20],
//!     SchedConfig::restart(8, 1 << 10, 64),
//!     SchedulerKind::RestartSimplified,
//! );
//! assert_eq!(h.wait(), Ok(6765));
//! ```
//!
//! The segment lifecycle, the backpressure rule and the worker parking
//! protocol are documented in DESIGN.md §7.
//!
//! # Quick start
//!
//! ```
//! use tb_core::prelude::*;
//! use tb_service::{Runtime, RuntimeConfig};
//!
//! /// Count the leaves of a depth-n binary tree (any BlockProgram works).
//! struct Tree(u32);
//! impl BlockProgram for Tree {
//!     type Store = Vec<u32>;
//!     type Reducer = u64;
//!     fn arity(&self) -> usize { 2 }
//!     fn make_root(&self) -> Vec<u32> { vec![self.0] }
//!     fn make_reducer(&self) -> u64 { 0 }
//!     fn merge_reducers(&self, a: &mut u64, b: u64) { *a += b; }
//!     fn expand(&self, block: &mut Vec<u32>, out: &mut BucketSet<Vec<u32>>, red: &mut u64) {
//!         for n in block.drain(..) {
//!             if n == 0 { *red += 1 } else {
//!                 out.bucket(0).push(n - 1);
//!                 out.bucket(1).push(n - 1);
//!             }
//!         }
//!     }
//! }
//!
//! // One shared runtime; clients clone it freely.
//! let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 16, ..RuntimeConfig::default() });
//!
//! // Mixed jobs in flight concurrently, each with its own scheduler.
//! let a = rt.submit(Tree(10), SchedConfig::basic(4, 64), SchedulerKind::ReExpansion);
//! let b = rt.submit(Tree(12), SchedConfig::restart(4, 64, 16), SchedulerKind::RestartSimplified);
//! assert_eq!(a.wait(), Ok(1 << 10));
//! assert_eq!(b.wait(), Ok(1 << 12));
//!
//! // Bulk data-parallel submission: items chunked adaptively, results in
//! // input order.
//! let bulk = rt.submit_bulk(
//!     (0..64u32).map(|_| 4u32).collect::<Vec<_>>(),
//!     SchedConfig::basic(4, 64),
//!     SchedulerKind::ReExpansion,
//!     |chunk: Vec<u32>| Tree(chunk.len() as u32 + 3), // one program per chunk
//! );
//! let total: u64 = bulk.wait().into_iter().map(|r| r.unwrap()).sum();
//! assert!(total > 0);
//!
//! // Cancellation is cooperative and drop is detach, not cancel.
//! let big = rt.submit(Tree(28), SchedConfig::basic(4, 1024), SchedulerKind::ReExpansion);
//! big.cancel();
//! let _ = big.wait(); // Err(Cancelled), or Ok(_) if it finished first — never a hang
//!
//! // The submission path never spin-blocked on capacity:
//! assert_eq!(rt.stats().injector.full_waits, 0);
//! ```

mod bulk;
mod gate;
mod handle;
mod runtime;
pub mod sched;
pub mod shard;
pub mod wire;

pub use bulk::BulkHandle;
pub use handle::{JobError, JobHandle};
pub use runtime::{Runtime, RuntimeConfig, RuntimeLoad, ServiceStats, DEFAULT_TENANT};
pub use sched::{
    Action, AdmissionPolicy, JobId, JobPhase, SchedCore, TenantCounters, TenantId, TenantSnapshot, TenantSpec,
};
pub use shard::{
    affinity_shard, Placement, PlacementCore, PlacementCounters, PlacementPolicy, ShardConfig, ShardId,
    ShardSnapshot, ShardedRuntime,
};
