//! The bounded-inflight backpressure gate.
//!
//! The injector is unbounded (that is the point — submission never
//! spin-blocks), so *something* has to stop a runaway client from queueing
//! a million jobs and watching p99 latency go to the moon. The gate is that
//! something: a counting semaphore over *admitted, incomplete* jobs.
//! [`Runtime::submit`] acquires a slot (blocking the submitting client when
//! the runtime is saturated — backpressure lands on the client, where it
//! belongs, not on the pool); job completion releases it. Clients that
//! would rather shed load than wait use `try_submit`.
//!
//! Mutex + condvar is the right tool here: the gate is touched once per
//! job on the *client* side, never by workers between scheduling actions.
//!
//! [`Runtime::submit`]: crate::Runtime::submit

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};

pub(crate) struct Gate {
    max: usize,
    inflight: Mutex<usize>,
    cv: Condvar,
    /// Times a submitter blocked waiting for a slot (the backpressure
    /// signal the service benchmark reports).
    blocked: AtomicU64,
}

impl Gate {
    pub(crate) fn new(max: usize) -> Self {
        Gate { max: max.max(1), inflight: Mutex::new(0), cv: Condvar::new(), blocked: AtomicU64::new(0) }
    }

    /// Block until a slot is free, then take it.
    pub(crate) fn acquire(&self) {
        let mut n = self.inflight.lock();
        if *n >= self.max {
            self.blocked.fetch_add(1, Ordering::Relaxed);
            while *n >= self.max {
                self.cv.wait(&mut n);
            }
        }
        *n += 1;
    }

    /// Take a slot only if one is free right now.
    pub(crate) fn try_acquire(&self) -> bool {
        let mut n = self.inflight.lock();
        if *n >= self.max {
            return false;
        }
        *n += 1;
        true
    }

    /// Return a slot (called by the completing job).
    ///
    /// # Panics
    /// If no slot is held. An unbalanced release is not a recoverable
    /// hiccup: it silently raises the gate's effective capacity, and with
    /// per-tenant gates that means one tenant's accounting bug widens its
    /// own quota — so this is a hard error in release builds too, not a
    /// `debug_assert`.
    pub(crate) fn release(&self) {
        let mut n = self.inflight.lock();
        assert!(*n > 0, "Gate::release without a matching acquire");
        *n -= 1;
        drop(n);
        self.cv.notify_one();
    }

    /// Admitted jobs not yet completed.
    pub(crate) fn inflight(&self) -> usize {
        *self.inflight.lock()
    }

    /// Slot capacity.
    pub(crate) fn max(&self) -> usize {
        self.max
    }

    /// Times a submitter blocked on saturation.
    pub(crate) fn blocked(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_release_roundtrip() {
        let g = Gate::new(2);
        g.acquire();
        g.acquire();
        assert_eq!(g.inflight(), 2);
        assert!(!g.try_acquire());
        g.release();
        assert!(g.try_acquire());
        g.release();
        g.release();
        assert_eq!(g.inflight(), 0);
    }

    #[test]
    fn saturated_acquire_blocks_until_release() {
        let g = Arc::new(Gate::new(1));
        g.acquire();
        let g2 = Arc::clone(&g);
        let t = std::thread::spawn(move || {
            g2.acquire(); // blocks until the main thread releases
            g2.release();
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        g.release();
        t.join().unwrap();
        assert_eq!(g.inflight(), 0);
        assert!(g.blocked() >= 1, "the second acquire must have registered backpressure");
    }

    #[test]
    #[should_panic(expected = "Gate::release without a matching acquire")]
    fn unbalanced_release_is_a_hard_error() {
        Gate::new(2).release();
    }

    #[test]
    #[should_panic(expected = "Gate::release without a matching acquire")]
    fn double_release_is_a_hard_error() {
        let g = Gate::new(2);
        g.acquire();
        g.release();
        g.release();
    }
}
