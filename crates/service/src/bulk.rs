//! Bulk data-parallel submission: one input slice, many chunk jobs.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use tb_core::CancelToken;

use crate::handle::JobError;

/// Shared state between a [`BulkHandle`] and its chunk jobs.
pub(crate) struct BulkCore<R> {
    results: Mutex<Vec<Option<Result<R, JobError>>>>,
    remaining: AtomicUsize,
    done: AtomicBool,
    cv: Condvar,
    cancel: CancelToken,
}

impl<R> BulkCore<R> {
    pub(crate) fn new(chunks: usize) -> Self {
        BulkCore {
            results: Mutex::new((0..chunks).map(|_| None).collect()),
            remaining: AtomicUsize::new(chunks),
            done: AtomicBool::new(chunks == 0),
            cv: Condvar::new(),
            cancel: CancelToken::new(),
        }
    }

    pub(crate) fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Record chunk `index`'s result; the last chunk wakes the waiters.
    pub(crate) fn complete_chunk(&self, index: usize, result: Result<R, JobError>) {
        {
            let mut results = self.results.lock();
            debug_assert!(results[index].is_none(), "chunk completed twice");
            results[index] = Some(result);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.results.lock();
            self.done.store(true, Ordering::Release);
            self.cv.notify_all();
        }
    }
}

/// A handle to one bulk submission: the input slice was cut into chunks
/// ([`BulkHandle::chunks`] of them), each running as its own job; the
/// handle aggregates the per-chunk reductions in chunk order (i.e. input
/// order — chunking is order-preserving).
///
/// Like [`JobHandle`](crate::JobHandle), dropping the handle detaches; the
/// chunk jobs run to completion and release their backpressure slots.
pub struct BulkHandle<R> {
    core: Arc<BulkCore<R>>,
    chunks: usize,
}

impl<R> BulkHandle<R> {
    pub(crate) fn new(core: Arc<BulkCore<R>>, chunks: usize) -> Self {
        BulkHandle { core, chunks }
    }

    /// Number of chunk jobs this submission was cut into.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Have all chunks completed?
    pub fn is_finished(&self) -> bool {
        self.core.done.load(Ordering::Acquire)
    }

    /// Request cooperative cancellation of every chunk (running chunks
    /// drain; chunks still queued complete immediately with
    /// [`JobError::Cancelled`]).
    pub fn cancel(&self) {
        self.core.cancel.cancel();
    }

    /// Block until every chunk completes and return the per-chunk results
    /// in chunk (input) order.
    ///
    /// The result mutex is held only long enough to take the completed
    /// vector out; unwrapping (and anything the caller does with the
    /// results) runs with the lock released.
    pub fn wait(self) -> Vec<Result<R, JobError>> {
        let taken = {
            let mut results = self.core.results.lock();
            while !self.core.done.load(Ordering::Acquire) {
                self.core.cv.wait(&mut results);
            }
            std::mem::take(&mut *results)
        };
        taken.into_iter().map(|slot| slot.expect("all chunks completed")).collect()
    }

    /// Block until every chunk completes, then fold the chunk reductions in
    /// chunk (input) order with `merge`, short-circuiting on the first
    /// chunk error.
    ///
    /// The fold runs strictly *after* the result mutex is released (it
    /// operates on the taken vector, never inside the lock), so a slow —
    /// or re-entrant, e.g. one that submits and waits on further work —
    /// merge closure cannot block chunk completion or other waiters.
    pub fn wait_merged<T, F>(self, init: T, mut merge: F) -> Result<T, JobError>
    where
        F: FnMut(T, R) -> T,
    {
        let mut acc = init;
        for result in self.wait() {
            acc = merge(acc, result?);
        }
        Ok(acc)
    }
}

/// Adaptive DCAFE-style chunk sizing: aim for a fixed number of chunks per
/// worker when the queue is idle, and *grow* the chunk size with the
/// current injector depth — a backed-up queue gets fewer, larger jobs
/// instead of being flooded with one task per item. Returns the chunk
/// length in items (at least 1, at most `items`).
///
/// The actual policy lives in [`tb_core::GrainController::chunk_len`] —
/// the same controller that drives `Policy::Adaptive`'s per-worker grain —
/// so the service's bulk seam and the scheduler's block seam share one
/// depth-coarsening rule instead of two hand-tuned copies.
pub(crate) fn adaptive_chunk_len(items: usize, workers: usize, queue_depth: usize) -> usize {
    tb_core::GrainController::chunk_len(items, workers, queue_depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_yields_a_few_chunks_per_worker() {
        let len = adaptive_chunk_len(1024, 4, 0);
        assert_eq!(len, 64, "1024 items / (4 workers * 4 chunks)");
        let chunks = 1024usize.div_ceil(len);
        assert_eq!(chunks, 16);
    }

    #[test]
    fn deep_queue_coarsens_chunks() {
        let idle = adaptive_chunk_len(1024, 4, 0);
        let busy = adaptive_chunk_len(1024, 4, 32);
        assert!(busy > idle, "backlog must coarsen: {idle} -> {busy}");
        assert!(busy <= 1024);
    }

    #[test]
    fn degenerate_inputs_stay_sane() {
        assert_eq!(adaptive_chunk_len(0, 4, 0), 1);
        assert_eq!(adaptive_chunk_len(1, 4, 100), 1);
        assert_eq!(adaptive_chunk_len(3, 128, 0), 1);
        // Chunk never exceeds the input length.
        assert_eq!(adaptive_chunk_len(10, 1, 1_000_000), 10);
    }

    #[test]
    fn empty_bulk_is_immediately_done() {
        let core: Arc<BulkCore<u64>> = Arc::new(BulkCore::new(0));
        let h = BulkHandle::new(core, 0);
        assert!(h.is_finished());
        assert!(h.wait().is_empty());
    }

    #[test]
    fn chunk_completion_order_does_not_matter() {
        let core = Arc::new(BulkCore::new(3));
        core.complete_chunk(2, Ok(30u64));
        core.complete_chunk(0, Ok(10));
        let h = BulkHandle::new(Arc::clone(&core), 3);
        assert!(!h.is_finished());
        core.complete_chunk(1, Err(JobError::Cancelled));
        assert!(h.is_finished());
        assert_eq!(h.wait(), vec![Ok(10), Err(JobError::Cancelled), Ok(30)]);
    }

    #[test]
    fn wait_merged_folds_in_chunk_order() {
        let core = Arc::new(BulkCore::new(3));
        core.complete_chunk(1, Ok(2u64));
        core.complete_chunk(0, Ok(1));
        core.complete_chunk(2, Ok(3));
        let h = BulkHandle::new(core, 3);
        let digits = h.wait_merged(0u64, |acc, r| acc * 10 + r).unwrap();
        assert_eq!(digits, 123, "fold order is chunk order, not completion order");
    }

    #[test]
    fn wait_merged_short_circuits_on_chunk_error() {
        let core = Arc::new(BulkCore::new(2));
        core.complete_chunk(0, Err(JobError::Panicked));
        core.complete_chunk(1, Ok(7u64));
        let h = BulkHandle::new(core, 2);
        assert_eq!(h.wait_merged(0u64, |acc, r| acc + r), Err(JobError::Panicked));
    }

    #[test]
    fn merge_runs_outside_the_result_mutex() {
        let core = Arc::new(BulkCore::new(2));
        core.complete_chunk(0, Ok(1u64));
        core.complete_chunk(1, Ok(2));
        let h = BulkHandle::new(Arc::clone(&core), 2);
        let sum = h
            .wait_merged(0u64, |acc, r| {
                assert!(core.results.try_lock().is_some(), "merge held the result mutex");
                acc + r
            })
            .unwrap();
        assert_eq!(sum, 3);
    }
}
