//! The line-delimited TCP front-end over a [`ShardedRuntime`].
//!
//! Spec source text is already the service's serializable, validated,
//! hostile-input-hardened payload (every parse/validate failure is a caret
//! diagnostic, never a worker panic — see DESIGN.md §8), so the wire
//! protocol is deliberately thin: one request per line, one response line
//! per request, UTF-8, `\n`-terminated (`\r\n` tolerated).
//!
//! # Grammar
//!
//! ```text
//! request  := "SUBMIT" SP tenant SP tier SP args SP source
//!           | "STATS"
//!           | "SHUTDOWN"
//! tenant   := 1*64 of [A-Za-z0-9_-]          ; "default" = the built-in tenant
//! tier     := "auto" | "scalar" | "simd"     ; SpecTier
//! args     := "[" [ INT *( "," INT ) ] "]"   ; root call, e.g. [20] or []
//! source   := rest of line                   ; spec-language source text
//!
//! response := "OK" SP job-id SP value        ; value = the spec's reduction
//!           | "OK" SP job-id SP info         ; STATS / SHUTDOWN payloads
//!           | "ERR" SP message               ; message \-escaped onto one line
//! ```
//!
//! Framing limits (hard, enforced before any parsing): a request line
//! longer than [`MAX_LINE_BYTES`] is answered with `ERR` and the
//! connection is closed (no resync scan — an oversized line is either an
//! attack or a broken client); at most [`MAX_TENANTS`] distinct tenant
//! names auto-register (tenants cannot be unregistered, so an unbounded
//! name stream would be a memory leak by protocol); at most
//! [`MAX_CONNECTIONS`] concurrent connections (the next one is refused
//! with `ERR` and closed).
//!
//! # Backpressure and shedding
//!
//! Each connection is served **serially**: one in-flight job per
//! connection, response written before the next request is read. A client
//! that wants pipelining opens more connections — up to the cap — so the
//! server's total exposure is bounded by `MAX_CONNECTIONS` jobs plus the
//! per-tenant gates behind them. Submissions take the *shedding* path
//! ([`ShardedRuntime::try_submit_spec_tier_as`]): overflow re-routes to a
//! sibling shard, and only with every shard at capacity does the client
//! get `ERR overloaded` — the server never queues unboundedly on a
//! client's behalf.
//!
//! # Shutdown
//!
//! `SHUTDOWN` answers `OK`, then drains gracefully: the accept loop stops,
//! every connection finishes the request it is currently serving (none of
//! them are abandoned mid-job), and the server joins its threads. A
//! half-received line at drain time is dropped, not answered.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tb_core::{SchedConfig, SchedulerKind};
use tb_spec::SpecTier;

use crate::handle::JobError;
use crate::sched::TenantId;
use crate::shard::ShardedRuntime;
use crate::DEFAULT_TENANT;

/// Hard cap on one request line, terminator included. Far above the spec
/// parser's own resource caps (1000 nodes ≪ 64 KiB of source), so every
/// legitimate program fits with room to spare.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Distinct tenant names the wire layer will auto-register.
pub const MAX_TENANTS: usize = 64;

/// Concurrent connections served; the next is refused with `ERR`.
pub const MAX_CONNECTIONS: usize = 64;

/// Gate capacity given to auto-registered wire tenants (per shard).
const WIRE_TENANT_PENDING: usize = 64;

/// How often an idle connection wakes to check for server drain.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run spec `source` for `tenant` at `tier` with root call `args`.
    Submit {
        /// Tenant name (auto-registered on first use; `"default"` is the
        /// built-in tenant).
        tenant: String,
        /// Execution tier.
        tier: SpecTier,
        /// The root argument tuple.
        args: Vec<i64>,
        /// Spec-language source text.
        source: String,
    },
    /// Report rolled-up shard/placement counters.
    Stats,
    /// Begin graceful drain.
    Shutdown,
}

/// Escape `msg` onto one response line: `\` → `\\`, newline → `\n`,
/// carriage return → `\r`. The caret diagnostics stay multi-line on the
/// client after [`unescape_line`].
pub fn escape_line(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    for c in msg.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_line`]. A trailing lone backslash is kept literally.
pub fn unescape_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Render a `SUBMIT` line (without the terminating newline). The inverse
/// of [`parse_request`] for valid single-line sources — the round-trip
/// property `tests/wire_proto.rs` fuzzes.
pub fn render_submit(tenant: &str, tier: SpecTier, args: &[i64], source: &str) -> String {
    let tier = match tier {
        SpecTier::Auto => "auto",
        SpecTier::Scalar => "scalar",
        SpecTier::Simd => "simd",
    };
    let args = args.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",");
    format!("SUBMIT {tenant} {tier} [{args}] {source}")
}

fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Parse one request line (terminator already stripped; a trailing `\r`
/// is tolerated). Errors are client-facing `ERR` payloads.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut parts = line.splitn(2, ' ');
    let verb = parts.next().unwrap_or("");
    let rest = parts.next();
    match (verb, rest) {
        ("STATS", None) => Ok(Request::Stats),
        ("SHUTDOWN", None) => Ok(Request::Shutdown),
        ("STATS" | "SHUTDOWN", Some(_)) => Err(format!("{verb} takes no operands")),
        ("SUBMIT", Some(rest)) => parse_submit(rest),
        ("SUBMIT", None) => Err("SUBMIT needs: <tenant> <tier> <args> <source>".into()),
        ("", _) => Err("empty request".into()),
        (other, _) => Err(format!("unknown verb {other:?} (expected SUBMIT, STATS or SHUTDOWN)")),
    }
}

fn parse_submit(rest: &str) -> Result<Request, String> {
    let mut parts = rest.splitn(4, ' ');
    let (tenant, tier, args, source) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(t), Some(tier), Some(args), Some(src)) => (t, tier, args, src),
        _ => return Err("SUBMIT needs: <tenant> <tier> <args> <source>".into()),
    };
    if !valid_tenant(tenant) {
        return Err(format!("bad tenant name {tenant:?} (1-64 chars of [A-Za-z0-9_-])"));
    }
    let tier = match tier {
        "auto" => SpecTier::Auto,
        "scalar" => SpecTier::Scalar,
        "simd" => SpecTier::Simd,
        other => return Err(format!("bad tier {other:?} (expected auto, scalar or simd)")),
    };
    let inner = args
        .strip_prefix('[')
        .and_then(|a| a.strip_suffix(']'))
        .ok_or_else(|| format!("bad args {args:?} (expected e.g. [20] or [])"))?;
    let args = if inner.is_empty() {
        Vec::new()
    } else {
        inner
            .split(',')
            .map(|a| a.parse::<i64>().map_err(|_| format!("bad root argument {a:?} (expected i64)")))
            .collect::<Result<Vec<i64>, String>>()?
    };
    if source.trim().is_empty() {
        return Err("empty spec source".into());
    }
    Ok(Request::Submit { tenant: tenant.to_string(), tier, args, source: source.to_string() })
}

struct ServerInner {
    rt: ShardedRuntime,
    listener: TcpListener,
    local_addr: SocketAddr,
    draining: AtomicBool,
    next_job: AtomicU64,
    active_conns: AtomicUsize,
    tenants: Mutex<HashMap<String, TenantId>>,
}

impl ServerInner {
    /// Resolve a wire tenant name to a runtime tenant, auto-registering
    /// up to [`MAX_TENANTS`] names.
    fn resolve_tenant(&self, name: &str) -> Result<TenantId, String> {
        if name == "default" {
            return Ok(DEFAULT_TENANT);
        }
        let mut tenants = self.tenants.lock();
        if let Some(&id) = tenants.get(name) {
            return Ok(id);
        }
        if tenants.len() >= MAX_TENANTS {
            return Err(format!("tenant limit reached ({MAX_TENANTS} names)"));
        }
        let id = self.rt.register_tenant(crate::TenantSpec::new(name, WIRE_TENANT_PENDING));
        tenants.insert(name.to_string(), id);
        Ok(id)
    }

    /// Serve one parsed request, returning the response line (no
    /// terminator).
    fn respond(&self, req: Request) -> String {
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        match req {
            Request::Submit { tenant, tier, args, source } => {
                let tenant = match self.resolve_tenant(&tenant) {
                    Ok(t) => t,
                    Err(e) => return format!("ERR {}", escape_line(&e)),
                };
                let cfg = SchedConfig::restart(8, 1 << 10, 64);
                let handle = match self.rt.try_submit_spec_tier_as(
                    tenant,
                    &source,
                    args,
                    cfg,
                    SchedulerKind::RestartSimplified,
                    tier,
                ) {
                    Ok(h) => h,
                    Err(_) => return "ERR overloaded: every shard at capacity, resubmit later".into(),
                };
                match handle.wait() {
                    Ok(value) => format!("OK {id} {value}"),
                    Err(JobError::Rejected(diag)) => format!("ERR {}", escape_line(&diag)),
                    Err(JobError::Cancelled) => "ERR job cancelled".into(),
                    Err(JobError::Panicked) => "ERR job panicked".into(),
                }
            }
            Request::Stats => {
                let snap = self.rt.snapshot();
                let p = snap.placement;
                format!(
                    "OK {id} shards={} submitted={} placed={} shed={} rejected={} completed={} inflight={}",
                    snap.shards.len(),
                    p.submitted,
                    p.placed,
                    p.shed,
                    p.rejected,
                    snap.completed(),
                    snap.inflight(),
                )
            }
            Request::Shutdown => {
                self.draining.store(true, Ordering::Release);
                format!("OK {id} draining")
            }
        }
    }
}

/// How one framed line read ended.
enum Frame {
    Line(String),
    /// Peer closed (possibly mid-line: a torn request is dropped).
    Closed,
    /// Line exceeded [`MAX_LINE_BYTES`].
    TooLong,
    /// The line was not UTF-8.
    NotUtf8,
    /// Server drain began while idle between requests.
    Draining,
}

/// Read one `\n`-terminated line with a hard length cap, polling the
/// drain flag while idle. The reader carries a read timeout (set at
/// connection setup) so an idle blocking read wakes every [`IDLE_POLL`].
fn read_frame(r: &mut BufReader<TcpStream>, draining: &AtomicBool) -> io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = match r.fill_buf() {
            Ok(b) => b,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if draining.load(Ordering::Acquire) && buf.is_empty() {
                    return Ok(Frame::Draining);
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(Frame::Closed);
        }
        let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (available.len(), false),
        };
        buf.extend_from_slice(&available[..chunk]);
        r.consume(chunk);
        if buf.len() > MAX_LINE_BYTES {
            return Ok(Frame::TooLong);
        }
        if done {
            while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return match String::from_utf8(buf) {
                Ok(line) => Ok(Frame::Line(line)),
                Err(_) => Ok(Frame::NotUtf8),
            };
        }
    }
}

/// Serve one connection until the peer closes, a framing violation
/// closes it, or the server drains.
fn serve_conn(inner: &ServerInner, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        if inner.draining.load(Ordering::Acquire) {
            return;
        }
        let line = match read_frame(&mut reader, &inner.draining) {
            Ok(Frame::Line(line)) => line,
            Ok(Frame::TooLong) => {
                let _ = writeln!(writer, "ERR line exceeds {MAX_LINE_BYTES} bytes");
                return;
            }
            Ok(Frame::NotUtf8) => {
                let _ = writeln!(writer, "ERR request is not UTF-8");
                return;
            }
            Ok(Frame::Closed | Frame::Draining) | Err(_) => return,
        };
        if line.is_empty() {
            continue; // tolerate keep-alive blank lines
        }
        let response = match parse_request(&line) {
            Ok(req) => inner.respond(req),
            Err(e) => format!("ERR {}", escape_line(&e)),
        };
        if writeln!(writer, "{response}").is_err() {
            return;
        }
    }
}

/// A bound, not-yet-serving wire server. [`WireServer::spawn`] starts the
/// accept loop and returns the handle to drain/join it.
pub struct WireServer {
    inner: Arc<ServerInner>,
}

impl WireServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over
    /// `rt`. The runtime may be shared: clones submitted elsewhere keep
    /// working, and its stats include wire traffic.
    pub fn bind(addr: impl ToSocketAddrs, rt: ShardedRuntime) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(WireServer {
            inner: Arc::new(ServerInner {
                rt,
                listener,
                local_addr,
                draining: AtomicBool::new(false),
                next_job: AtomicU64::new(1),
                active_conns: AtomicUsize::new(0),
                tenants: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The bound address (the resolved port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Start the accept loop on its own thread.
    pub fn spawn(self) -> ServerHandle {
        let inner = Arc::clone(&self.inner);
        let accept = std::thread::Builder::new()
            .name("tb-server-accept".into())
            .spawn(move || accept_loop(&inner))
            .expect("failed to spawn accept thread");
        ServerHandle { inner: self.inner, accept }
    }
}

fn accept_loop(inner: &Arc<ServerInner>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !inner.draining.load(Ordering::Acquire) {
        match inner.listener.accept() {
            Ok((stream, _)) => {
                conns.retain(|h| !h.is_finished());
                if inner.active_conns.load(Ordering::Acquire) >= MAX_CONNECTIONS {
                    let mut s = stream;
                    let _ = s.set_nonblocking(false);
                    let _ = writeln!(s, "ERR connection limit reached ({MAX_CONNECTIONS})");
                    continue;
                }
                let _ = stream.set_nonblocking(false);
                inner.active_conns.fetch_add(1, Ordering::AcqRel);
                let inner = Arc::clone(inner);
                let conn = std::thread::Builder::new()
                    .name("tb-server-conn".into())
                    .spawn(move || {
                        serve_conn(&inner, stream);
                        inner.active_conns.fetch_sub(1, Ordering::AcqRel);
                    })
                    .expect("failed to spawn connection thread");
                conns.push(conn);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Graceful drain: every connection finishes its in-flight request.
    for conn in conns {
        let _ = conn.join();
    }
}

/// A running wire server. Dropping the handle detaches (the server keeps
/// serving); call [`ServerHandle::shutdown`] to drain and join.
pub struct ServerHandle {
    inner: Arc<ServerInner>,
    accept: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Has a `SHUTDOWN` request (or [`ServerHandle::shutdown`]) begun the
    /// drain?
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Begin the drain and block until the accept loop and every
    /// connection thread have exited. Panics if the accept thread
    /// panicked — a wire server must never die of a request.
    pub fn shutdown(self) {
        self.inner.draining.store(true, Ordering::Release);
        self.accept.join().expect("accept loop panicked");
    }

    /// Block until a wire `SHUTDOWN` request drains the server.
    pub fn join(self) {
        self.accept.join().expect("accept loop panicked");
    }
}

/// Minimal test/CLI client: connect, send each line, read one response
/// line per request. Used by `tb-server client`, the CI smoke step, and
/// the protocol tests.
pub fn client_roundtrip(addr: impl ToSocketAddrs, lines: &[&str]) -> io::Result<Vec<String>> {
    let mut stream = TcpStream::connect(addr)?;
    let mut responses = Vec::with_capacity(lines.len());
    let mut reader = BufReader::new(stream.try_clone()?);
    for line in lines {
        writeln!(stream, "{line}")?;
        stream.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(ErrorKind::UnexpectedEof, "server closed the connection"));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        responses.push(response);
    }
    Ok(responses)
}

/// Read whatever single response the server sends before closing — for
/// clients that expect an `ERR`-then-close (oversized line, bad UTF-8).
pub fn read_final_response(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = String::new();
    stream.read_to_string(&mut buf)?;
    Ok(buf.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let line = render_submit(
            "alice",
            SpecTier::Scalar,
            &[20, -3],
            "spec f(n,m) { base (n < 2) { reduce n; } else { spawn f(n - 1, m); } }",
        );
        let req = parse_request(&line).unwrap();
        assert_eq!(
            req,
            Request::Submit {
                tenant: "alice".into(),
                tier: SpecTier::Scalar,
                args: vec![20, -3],
                source: "spec f(n,m) { base (n < 2) { reduce n; } else { spawn f(n - 1, m); } }".into(),
            }
        );
    }

    #[test]
    fn hostile_lines_parse_to_errors() {
        for bad in [
            "",
            "NOPE",
            "SUBMIT",
            "SUBMIT t auto [20]",          // no source
            "SUBMIT t warp [20] spec ...", // bad tier
            "SUBMIT t auto 20 spec ...",   // unbracketed args
            "SUBMIT t auto [a] spec ...",  // non-integer arg
            "SUBMIT bad!name auto [] spec ...",
            "STATS now",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn escaping_round_trips() {
        let diag = "parse error at line 2\n  | spawn fib(n - 1)\r\n  | back\\slash ^";
        assert_eq!(unescape_line(&escape_line(diag)), diag);
        assert!(!escape_line(diag).contains('\n'));
    }
}
