//! Job handles: the client's view of a submitted run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use tb_core::CancelToken;

/// Why a job produced no value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's [`CancelToken`] fired before the run finished; the partial
    /// reduction is discarded.
    Cancelled,
    /// The program panicked inside the scheduler; the panic was contained
    /// on the worker and surfaced here instead of unwinding the pool.
    Panicked,
    /// The submission was rejected before any worker ran it — a spec
    /// source that failed to parse/validate, or root arguments that do not
    /// match the method. The message is the located diagnostic (for parse
    /// errors, a caret line pointing into the client's source).
    Rejected(std::sync::Arc<str>),
}

impl JobError {
    /// A [`JobError::Rejected`] from any diagnostic.
    pub fn rejected(message: impl std::fmt::Display) -> Self {
        JobError::Rejected(message.to_string().into())
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::Panicked => write!(f, "job panicked"),
            JobError::Rejected(msg) => write!(f, "job rejected: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Shared completion state between a [`JobHandle`] and the pool job that
/// fulfils it. The worker side holds its own `Arc`, which is what makes
/// dropping the handle mid-run safe: the run continues, publishes into the
/// state, releases its backpressure slot, and the state is freed when the
/// last `Arc` goes.
pub(crate) struct JobCore<R> {
    slot: Mutex<Option<Result<R, JobError>>>,
    cv: Condvar,
    done: AtomicBool,
    cancel: CancelToken,
}

impl<R> JobCore<R> {
    pub(crate) fn new() -> Self {
        JobCore {
            slot: Mutex::new(None),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
            cancel: CancelToken::new(),
        }
    }

    pub(crate) fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Publish the result and wake every waiter. Called exactly once, by
    /// the worker that ran the job.
    pub(crate) fn complete(&self, result: Result<R, JobError>) {
        let mut slot = self.slot.lock();
        *slot = Some(result);
        self.done.store(true, Ordering::Release);
        drop(slot);
        self.cv.notify_all();
    }
}

/// A handle to one submitted job.
///
/// The handle is the *client's* end only — dropping it detaches the job
/// (the run continues to completion and its backpressure slot is released
/// normally); it does **not** cancel. Cancellation is explicit via
/// [`JobHandle::cancel`] and cooperative: the run stops expanding within
/// one block of wherever each worker is (see `tb_core::cancel`).
pub struct JobHandle<R> {
    core: Arc<JobCore<R>>,
}

impl<R> JobHandle<R> {
    pub(crate) fn new(core: Arc<JobCore<R>>) -> Self {
        JobHandle { core }
    }

    /// Block the calling thread until the job completes, returning its
    /// reduction (or why there is none). Must be called from a non-worker
    /// thread — the same rule as `ThreadPool::install`.
    pub fn wait(self) -> Result<R, JobError> {
        let mut slot = self.core.slot.lock();
        while slot.is_none() {
            self.core.cv.wait(&mut slot);
        }
        slot.take().expect("job result present after wakeup")
    }

    /// Non-blocking poll: the result if the job has completed, `None`
    /// otherwise. A taken result is gone — a second poll returns `None`
    /// with [`JobHandle::is_finished`] still true.
    pub fn try_take(&mut self) -> Option<Result<R, JobError>> {
        if !self.is_finished() {
            return None;
        }
        self.core.slot.lock().take()
    }

    /// Has the job completed (successfully, cancelled, or panicked)?
    pub fn is_finished(&self) -> bool {
        self.core.done.load(Ordering::Acquire)
    }

    /// Request cooperative cancellation. Idempotent; returns immediately —
    /// use [`JobHandle::wait`] to observe the wind-down finishing.
    pub fn cancel(&self) {
        self.core.cancel.cancel();
    }

    /// A clone of the job's cancel token (e.g. to hand to a watchdog).
    pub fn cancel_token(&self) -> CancelToken {
        self.core.cancel_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_then_wait_returns_value() {
        let core = Arc::new(JobCore::new());
        core.complete(Ok(41));
        let h = JobHandle::new(core);
        assert!(h.is_finished());
        assert_eq!(h.wait(), Ok(41));
    }

    #[test]
    fn try_take_is_none_until_done_then_consumes() {
        let core: Arc<JobCore<u32>> = Arc::new(JobCore::new());
        let mut h = JobHandle::new(Arc::clone(&core));
        assert!(h.try_take().is_none());
        core.complete(Err(JobError::Cancelled));
        assert_eq!(h.try_take(), Some(Err(JobError::Cancelled)));
        assert!(h.try_take().is_none(), "result is taken once");
        assert!(h.is_finished());
    }

    #[test]
    fn wait_blocks_until_cross_thread_complete() {
        let core = Arc::new(JobCore::new());
        let h = JobHandle::new(Arc::clone(&core));
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            core.complete(Ok("done"));
        });
        assert_eq!(h.wait(), Ok("done"));
        t.join().unwrap();
    }
}
