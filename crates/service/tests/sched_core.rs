//! The deterministic scheduler test rig: `SchedCore` is a pure, thread-free
//! state machine, so every property of the admission discipline — weighted
//! quota accounting, queue transitions, preemption-victim choice, the park
//! pool bound, and the fair-vs-FIFO starvation contrast — is asserted here
//! by *scripting* arrivals and completions against the core's virtual
//! clock and reading back exact `Action` lists. No threads, no sleeps, no
//! timing assumptions: a failure reproduces identically on every run.

use tb_service::{Action, AdmissionPolicy, JobPhase, SchedCore, TenantId, TenantSpec};

fn policy(max_running: usize, max_parked: usize, fifo: bool) -> AdmissionPolicy {
    AdmissionPolicy { max_running, max_parked, fifo }
}

/// Drive the core to quiescence with immediate completion of everything it
/// starts, recording the tenant of each admission in order. Panics if the
/// core ever issues a Preempt (callers submit non-preemptible jobs only).
fn drain_admission_order(core: &mut SchedCore) -> Vec<TenantId> {
    let mut order = Vec::new();
    loop {
        let acts = core.schedule();
        if acts.is_empty() {
            break;
        }
        for act in acts {
            match act {
                Action::Start(id) | Action::Resume(id) => {
                    order.push(core.tenant_of(id).expect("admitted job is live"));
                    core.complete(id);
                }
                Action::Preempt(_) => panic!("no preemptible jobs were submitted"),
            }
        }
    }
    order
}

#[test]
fn weighted_quotas_split_admissions_three_to_one() {
    // One slot, two equal-priority tenants, weights 3:1, both saturated:
    // stride accounting must hand tenant A three admissions for every one
    // of B's — interleaved, not in starving runs.
    let mut core = SchedCore::new(policy(1, 0, false));
    let a = core.add_tenant(TenantSpec::new("a", 64).weight(3));
    let b = core.add_tenant(TenantSpec::new("b", 64).weight(1));
    for _ in 0..40 {
        core.submit(a, false);
    }
    for _ in 0..40 {
        core.submit(b, false);
    }
    let order = drain_admission_order(&mut core);
    assert_eq!(order.len(), 80);
    // While BOTH tenants still have backlog (the first 40 + a bit of
    // slack), the 3:1 ratio must hold in every window. Check the first 40
    // admissions: 30 for A, 10 for B, give or take rounding at window
    // edges.
    let a_share = order[..40].iter().filter(|&&t| t == a).count();
    assert!((28..=32).contains(&a_share), "weight-3 tenant got {a_share}/40 admissions, want ~30");
    // And B was never starved for long: every consecutive run of A
    // admissions in the contended prefix is at most `weight` long.
    let mut run = 0;
    for &t in &order[..40] {
        if t == a {
            run += 1;
            assert!(run <= 3, "weight-3 tenant admitted {run} in a row against a backlogged peer");
        } else {
            run = 0;
        }
    }
    assert_eq!(core.tenant_counters(a).completed, 40);
    assert_eq!(core.tenant_counters(b).completed, 40);
}

#[test]
fn idle_tenant_is_admitted_promptly_but_banks_no_credit() {
    // A heavy tenant runs alone for a while; then a light tenant submits
    // one job. Fair admission must start the light job next (its pass is
    // clamped to current virtual time, which trails the heavy tenant's by
    // one stride) — bounded wait, not FIFO-behind-the-flood. But the clamp
    // also means idling banked it no credit: after its job, the heavy
    // tenant resumes, rather than the light tenant burning a long idle
    // surplus.
    let mut core = SchedCore::new(policy(1, 0, false));
    let heavy = core.add_tenant(TenantSpec::new("heavy", 64));
    let light = core.add_tenant(TenantSpec::new("light", 64));
    let mut heavy_jobs: Vec<_> = (0..20).map(|_| core.submit(heavy, false)).collect();
    // Let ten heavy jobs through.
    for _ in 0..10 {
        let acts = core.schedule();
        let [Action::Start(id)] = acts[..] else { panic!("expected one start, got {acts:?}") };
        assert_eq!(heavy_jobs.remove(0), id);
        core.complete(id);
    }
    // Light arrives mid-flood.
    let light_job = core.submit(light, false);
    let acts = core.schedule();
    assert_eq!(acts, vec![Action::Start(light_job)], "light tenant admitted immediately");
    core.complete(light_job);
    // Back to the heavy backlog afterwards.
    let acts = core.schedule();
    let [Action::Start(id)] = acts[..] else { panic!("expected one start, got {acts:?}") };
    assert_eq!(core.tenant_of(id), Some(heavy));
    // Wait accounting: the light job was admitted at the virtual instant
    // it arrived (zero event ticks), not after the 10-job backlog.
    assert_eq!(core.tenant_counters(light).wait_ticks, 0);
    assert_eq!(core.tenant_counters(light).admissions, 1);
}

#[test]
fn fifo_mode_reproduces_the_tenant_blind_gate() {
    // The SAME arrival script as above, under the legacy FIFO policy: the
    // light tenant's job now sits behind the entire heavy backlog. This is
    // the core-level starvation regression pair — fair passes, FIFO fails
    // (by design, as the preserved baseline).
    let mut core = SchedCore::new(policy(1, 0, true));
    let heavy = core.add_tenant(TenantSpec::new("heavy", 64));
    let light = core.add_tenant(TenantSpec::new("light", 64));
    for _ in 0..20 {
        core.submit(heavy, false);
    }
    for _ in 0..10 {
        let acts = core.schedule();
        let [Action::Start(id)] = acts[..] else { panic!("expected one start, got {acts:?}") };
        core.complete(id);
    }
    core.submit(light, false);
    let order = drain_admission_order(&mut core);
    assert_eq!(order.len(), 11, "ten heavy jobs remain plus the light one");
    assert_eq!(order[10], light, "FIFO admits the light tenant dead last");
    assert!(order[..10].iter().all(|&t| t == heavy));
}

#[test]
fn queue_transitions_follow_the_state_machine() {
    // Waiting -> Running -> Preempting -> Parked -> Running -> gone, with
    // the pool slot handed to the higher-priority job in between.
    let mut core = SchedCore::new(policy(1, 4, false));
    let batch = core.add_tenant(TenantSpec::new("batch", 8));
    let inter = core.add_tenant(TenantSpec::new("interactive", 8).priority(1));

    let b = core.submit(batch, true);
    assert_eq!(core.job_phase(b), Some(JobPhase::Waiting));
    assert_eq!(core.schedule(), vec![Action::Start(b)]);
    assert_eq!(core.job_phase(b), Some(JobPhase::Running));
    assert_eq!(core.running(), 1);

    // Higher-priority arrival with the pool saturated: preempt the batch
    // job. The slot is NOT free yet — the victim must reach a boundary.
    let i = core.submit(inter, false);
    assert_eq!(core.schedule(), vec![Action::Preempt(b)]);
    assert_eq!(core.job_phase(b), Some(JobPhase::Preempting));
    assert_eq!(core.job_phase(i), Some(JobPhase::Waiting));
    assert_eq!(core.schedule(), vec![], "nothing to do until the victim parks");

    // The victim parks its 7-task frontier: slot frees, interactive starts.
    core.parked(b, 7);
    assert_eq!(core.job_phase(b), Some(JobPhase::Parked));
    assert_eq!((core.running(), core.parked_count(), core.parked_tasks()), (0, 1, 7));
    assert_eq!(core.schedule(), vec![Action::Start(i)]);

    // Interactive completes; the parked frontier resumes.
    core.complete(i);
    assert_eq!(core.schedule(), vec![Action::Resume(b)]);
    assert_eq!(core.job_phase(b), Some(JobPhase::Running));
    assert_eq!((core.parked_count(), core.parked_tasks()), (0, 0));
    core.complete(b);
    assert_eq!(core.job_phase(b), None);
    assert_eq!(core.running(), 0);

    let c = core.tenant_counters(batch);
    assert_eq!((c.preemptions, c.resumes, c.completed), (1, 1, 1));
    assert_eq!(core.tenant_counters(inter).completed, 1);
}

#[test]
fn victim_is_lowest_priority_then_youngest() {
    // Three running preemptible jobs at priorities 0, 0, 1; a priority-2
    // arrival must preempt exactly one job: priority 0 before priority 1,
    // and among the two priority-0 jobs the YOUNGEST (highest id), so the
    // job with the most sunk progress keeps its slot.
    let mut core = SchedCore::new(policy(3, 4, false));
    let p0 = core.add_tenant(TenantSpec::new("p0", 8));
    let p1 = core.add_tenant(TenantSpec::new("p1", 8).priority(1));
    let p2 = core.add_tenant(TenantSpec::new("p2", 8).priority(2));

    let old0 = core.submit(p0, true);
    let young0 = core.submit(p0, true);
    let mid1 = core.submit(p1, true);
    let mut started = core.schedule();
    started.sort_by_key(|a| match *a {
        Action::Start(id) => id,
        _ => panic!("expected starts only"),
    });
    assert_eq!(started, vec![Action::Start(old0), Action::Start(young0), Action::Start(mid1)]);

    core.submit(p2, false);
    assert_eq!(core.schedule(), vec![Action::Preempt(young0)], "lowest priority, youngest job");
    assert_eq!(core.job_phase(old0), Some(JobPhase::Running), "older sibling keeps its slot");
    assert_eq!(core.job_phase(mid1), Some(JobPhase::Running), "higher-priority job keeps its slot");
}

#[test]
fn same_priority_never_preempts() {
    // Preemption is strictly cross-priority: an equal-priority arrival
    // waits for a natural completion, it does not churn running jobs.
    let mut core = SchedCore::new(policy(1, 4, false));
    let t = core.add_tenant(TenantSpec::new("only", 8));
    let a = core.submit(t, true);
    assert_eq!(core.schedule(), vec![Action::Start(a)]);
    core.submit(t, true);
    assert_eq!(core.schedule(), vec![], "no preemption among equals");
    assert_eq!(core.job_phase(a), Some(JobPhase::Running));
}

#[test]
fn park_pool_bound_limits_outstanding_preemptions() {
    // max_parked = 1: with two low-priority preemptible jobs running and
    // two high-priority jobs waiting, only ONE victim may be preempted
    // until its frontier leaves the park pool. The second high-priority
    // job waits for a natural completion — memory for swapped-out
    // frontiers is bounded, whatever the demand.
    let mut core = SchedCore::new(policy(2, 1, false));
    let low = core.add_tenant(TenantSpec::new("low", 8));
    let high = core.add_tenant(TenantSpec::new("high", 8).priority(1));
    let a = core.submit(low, true);
    let b = core.submit(low, true);
    assert_eq!(core.schedule(), vec![Action::Start(a), Action::Start(b)]);
    core.submit(high, false);
    core.submit(high, false);
    // One Preempt only: the pool has room for one frontier.
    assert_eq!(core.schedule(), vec![Action::Preempt(b)]);
    assert_eq!(core.schedule(), vec![], "bound holds while the preemption is in flight");
    core.parked(b, 3);
    let acts = core.schedule();
    assert_eq!(acts.len(), 1, "slot goes to one high-priority job; no second preempt: {acts:?}");
    assert!(matches!(acts[0], Action::Start(_)));
    assert_eq!(core.parked_count(), 1, "park pool is full");
    // Even with high-priority demand still waiting, the remaining low job
    // keeps running.
    assert_eq!(core.job_phase(a), Some(JobPhase::Running));
}

#[test]
fn parked_high_priority_job_resumes_before_lower_waiting_work() {
    // A parked job re-enters admission at its tenant's priority: when a
    // slot frees, a parked priority-1 frontier beats waiting priority-0
    // work even though the waiting job arrived first.
    let mut core = SchedCore::new(policy(1, 4, false));
    let low = core.add_tenant(TenantSpec::new("low", 8));
    let mid = core.add_tenant(TenantSpec::new("mid", 8).priority(1));
    let top = core.add_tenant(TenantSpec::new("top", 8).priority(2));

    let m = core.submit(mid, true);
    assert_eq!(core.schedule(), vec![Action::Start(m)]);
    core.submit(low, false);
    let t = core.submit(top, false);
    assert_eq!(core.schedule(), vec![Action::Preempt(m)]);
    core.parked(m, 2);
    assert_eq!(core.schedule(), vec![Action::Start(t)]);
    core.complete(t);
    // Slot frees: the parked mid-priority frontier resumes; the waiting
    // low-priority job keeps waiting.
    assert_eq!(core.schedule(), vec![Action::Resume(m)]);
    core.complete(m);
    let acts = core.schedule();
    assert_eq!(acts.len(), 1);
    assert!(matches!(acts[0], Action::Start(_)), "low-priority job admitted last: {acts:?}");
}

#[test]
fn completion_of_a_preempting_job_cancels_the_park() {
    // A job asked to park may instead finish (it was one superstep from
    // done). The core must free its slot exactly once and not wait for a
    // `parked()` that will never come.
    let mut core = SchedCore::new(policy(1, 4, false));
    let low = core.add_tenant(TenantSpec::new("low", 8));
    let high = core.add_tenant(TenantSpec::new("high", 8).priority(1));
    let b = core.submit(low, true);
    assert_eq!(core.schedule(), vec![Action::Start(b)]);
    let h = core.submit(high, false);
    assert_eq!(core.schedule(), vec![Action::Preempt(b)]);
    core.complete(b); // finished under the preempt request
    assert_eq!(core.schedule(), vec![Action::Start(h)]);
    assert_eq!(core.running(), 1);
    assert_eq!(core.parked_count(), 0);
    assert_eq!(core.tenant_counters(low).preemptions, 0, "no swap-out actually happened");
}

#[test]
fn zero_max_parked_disables_preemption() {
    let mut core = SchedCore::new(policy(1, 0, false));
    let low = core.add_tenant(TenantSpec::new("low", 8));
    let high = core.add_tenant(TenantSpec::new("high", 8).priority(1));
    let b = core.submit(low, true);
    assert_eq!(core.schedule(), vec![Action::Start(b)]);
    core.submit(high, false);
    assert_eq!(core.schedule(), vec![], "preemption disabled: high waits for completion");
    core.complete(b);
    let acts = core.schedule();
    assert_eq!(acts.len(), 1);
    assert!(matches!(acts[0], Action::Start(_)));
}

#[test]
fn strict_priority_orders_admissions_across_classes() {
    // With a free pool and mixed waiting classes, every priority-1 job is
    // admitted before any priority-0 job, regardless of arrival order or
    // weights.
    let mut core = SchedCore::new(policy(1, 0, false));
    let low = core.add_tenant(TenantSpec::new("low", 64).weight(8));
    let high = core.add_tenant(TenantSpec::new("high", 64).priority(1));
    for _ in 0..5 {
        core.submit(low, false);
    }
    for _ in 0..5 {
        core.submit(high, false);
    }
    let order = drain_admission_order(&mut core);
    assert_eq!(order, vec![high, high, high, high, high, low, low, low, low, low]);
}

#[test]
fn virtual_clock_ticks_once_per_event() {
    let mut core = SchedCore::new(policy(4, 0, false));
    let t = core.add_tenant(TenantSpec::new("t", 8));
    assert_eq!(core.now(), 0);
    let a = core.submit(t, false);
    let b = core.submit(t, false);
    assert_eq!(core.now(), 2, "two submit events");
    core.schedule();
    assert_eq!(core.now(), 2, "schedule() decides, it is not an event");
    core.complete(a);
    core.complete(b);
    assert_eq!(core.now(), 4, "two completion events");
}
