//! Regression tests for the `submit_spec` compile cache's LRU eviction
//! (the ROADMAP "spec-cache eviction" item) and for the execution-tier
//! knob threaded through the spec submission path.
//!
//! The PR 4 cache was capped but never evicted: the first 1024 distinct
//! sources occupied the map forever, so a hot program arriving *after*
//! 1024 cold one-shots recompiled on every submission. The cache is now a
//! true LRU — every hit restamps its entry, and insertion at capacity
//! evicts the least-recently-used source — which these tests pin down
//! through the public `ServiceStats` counters (`spec_compiles` counts
//! misses, `spec_cache_hits` counts hits).

use tb_core::{SchedConfig, SchedulerKind};
use tb_service::{Runtime, RuntimeConfig};
use tb_spec::SpecTier;

/// Matches `SPEC_CACHE_CAP` in `tb-service`; the tests below fill exactly
/// this many distinct cold sources.
const CAP: usize = 1024;

const HOT_SRC: &str = "spec hot(n) {
  base (n < 2) { reduce n; }
  else { spawn hot(n - 1); spawn hot(n - 2); }
}";

/// A family of distinct single-task sources (the reduce constant varies,
/// so every source text — and thus every cache key — differs).
fn cold_src(i: usize) -> String {
    format!("spec cold(n) {{ base (0 < 1) {{ reduce {i}; }} else {{ spawn cold(n - 1); }} }}")
}

fn tiny_cfg() -> SchedConfig {
    SchedConfig::basic(4, 32)
}

#[test]
fn hot_source_survives_a_cap_of_cold_ones() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 8, ..RuntimeConfig::default() });
    let h = rt.submit_spec(HOT_SRC, vec![8], tiny_cfg(), SchedulerKind::Seq);
    assert_eq!(h.wait(), Ok(21));
    // Interleave CAP distinct cold sources with hot resubmissions: the
    // hot entry is always the most recently used, so LRU eviction must
    // sacrifice cold entries around it, never the hot one.
    for i in 0..CAP {
        let c = rt.submit_spec(&cold_src(i), vec![0], tiny_cfg(), SchedulerKind::Seq);
        assert_eq!(c.wait(), Ok(i as i64));
        let h = rt.submit_spec(HOT_SRC, vec![8], tiny_cfg(), SchedulerKind::Seq);
        assert_eq!(h.wait(), Ok(21));
    }
    let stats = rt.stats();
    assert_eq!(stats.spec_compiles as usize, 1 + CAP, "hot compiled exactly once, colds once each");
    assert_eq!(stats.spec_cache_hits as usize, CAP, "every hot resubmission hit the cache");
    assert_eq!(stats.rejected, 0);
}

#[test]
fn late_arriving_hot_source_displaces_a_cold_one() {
    // The case the PR 4 cap got wrong: fill the cache to capacity first,
    // *then* start using a new program heavily. A never-evicting cap
    // recompiles the newcomer forever; an LRU admits it on first sight
    // and serves every subsequent submission from the cache.
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 8, ..RuntimeConfig::default() });
    for i in 0..CAP {
        let c = rt.submit_spec(&cold_src(i), vec![0], tiny_cfg(), SchedulerKind::Seq);
        assert_eq!(c.wait(), Ok(i as i64));
    }
    for _ in 0..3 {
        let h = rt.submit_spec(HOT_SRC, vec![8], tiny_cfg(), SchedulerKind::Seq);
        assert_eq!(h.wait(), Ok(21));
    }
    let stats = rt.stats();
    assert_eq!(stats.spec_compiles as usize, CAP + 1, "the late hot source compiled exactly once");
    assert_eq!(stats.spec_cache_hits, 2, "its resubmissions were cache hits");
}

#[test]
fn eviction_victim_is_the_least_recently_used() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 8, ..RuntimeConfig::default() });
    // Fill to capacity, then touch source 0 so source 1 becomes the LRU.
    for i in 0..CAP {
        rt.submit_spec(&cold_src(i), vec![0], tiny_cfg(), SchedulerKind::Seq).wait().unwrap();
    }
    rt.submit_spec(&cold_src(0), vec![0], tiny_cfg(), SchedulerKind::Seq).wait().unwrap();
    // One newcomer evicts exactly one entry — the LRU, source 1.
    rt.submit_spec(HOT_SRC, vec![2], tiny_cfg(), SchedulerKind::Seq).wait().unwrap();
    let compiles_before = rt.stats().spec_compiles;
    // Source 0 (touched) and the newcomer are still cached…
    rt.submit_spec(&cold_src(0), vec![0], tiny_cfg(), SchedulerKind::Seq).wait().unwrap();
    rt.submit_spec(HOT_SRC, vec![2], tiny_cfg(), SchedulerKind::Seq).wait().unwrap();
    assert_eq!(rt.stats().spec_compiles, compiles_before, "touched and new entries survived");
    // …while source 1 was evicted and recompiles.
    rt.submit_spec(&cold_src(1), vec![0], tiny_cfg(), SchedulerKind::Seq).wait().unwrap();
    assert_eq!(rt.stats().spec_compiles, compiles_before + 1, "the LRU entry was the victim");
}

#[test]
fn execution_tiers_agree_and_share_the_cache() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 8, ..RuntimeConfig::default() });
    let cfg = SchedConfig::restart(4, 64, 16);
    let mut results = Vec::new();
    for tier in [SpecTier::Auto, SpecTier::Scalar, SpecTier::Simd] {
        let h = rt.submit_spec_tier(HOT_SRC, vec![17], cfg, SchedulerKind::ReExpansion, tier);
        results.push(h.wait().unwrap_or_else(|e| panic!("{tier:?}: {e:?}")));
    }
    assert_eq!(results, vec![1597, 1597, 1597], "all tiers are bit-identical");
    let stats = rt.stats();
    assert_eq!(stats.spec_compiles, 1, "tiers share one lowered SpecCode");
    assert_eq!(stats.spec_cache_hits, 2);

    // The foreach path honors the tier knob too.
    let calls: Vec<Vec<i64>> = (0..50).map(|i| vec![i % 10]).collect();
    let want = 88 * 5; // sum fib(0..=9) = fib(11) - 1 = 88, cycled 5 times
    for tier in [SpecTier::Scalar, SpecTier::Simd] {
        let h = rt.submit_spec_foreach_tier(HOT_SRC, calls.clone(), cfg, SchedulerKind::ReExpansion, tier);
        assert_eq!(h.wait(), Ok(want), "{tier:?}");
    }
}
