//! The deterministic placement test rig: `PlacementCore` is a pure,
//! thread-free state machine (the sharding counterpart of `SchedCore`), so
//! every property of the placement discipline — affinity stability,
//! least-loaded tie-breaking, the shed-then-reject overflow order,
//! load-report staleness, and the placed/shed/rejected conservation
//! invariant — is asserted here by *scripting* submit/complete/load-report
//! event sequences against the core's virtual clock and reading back exact
//! `Placement` outcomes. No threads, no sleeps, no timing assumptions: a
//! failure reproduces identically on every run.

use tb_service::shard::STALE_AFTER;
use tb_service::{affinity_shard, Placement, PlacementCore, PlacementPolicy, ShardId, TenantId};

/// A core with `shards` identical shards of `capacity` bookings each.
fn core(policy: PlacementPolicy, shards: usize, capacity: usize) -> PlacementCore {
    let mut core = PlacementCore::new(policy);
    for _ in 0..shards {
        core.add_shard(capacity);
    }
    core
}

/// Assert the conservation invariant from the counters alone.
fn assert_conserved(core: &PlacementCore) {
    let c = core.counters();
    assert_eq!(
        c.submitted,
        c.placed + c.shed + c.rejected,
        "every submit retires as exactly one of placed/shed/rejected: {c:?}"
    );
    assert_eq!(
        core.pending_total() as u64,
        c.placed + c.shed - c.completed - c.abandoned,
        "outstanding bookings are placements minus retirements: {c:?}"
    );
}

#[test]
fn affinity_is_stable_and_submission_independent() {
    // The home shard is a pure function of (tenant, shard count): the same
    // tenant lands on the same shard no matter how many jobs anyone has
    // submitted in between, and the public hash predicts every placement.
    let mut core = core(PlacementPolicy::Affinity, 4, 1_000);
    let tenants: Vec<TenantId> = (0..12).map(|_| core.add_tenant(1_000)).collect();
    let homes: Vec<ShardId> = tenants.iter().map(|&t| affinity_shard(t, 4)).collect();

    for round in 0..50 {
        for (i, &t) in tenants.iter().enumerate() {
            assert_eq!(
                core.submit(t),
                Placement::Placed(homes[i]),
                "tenant {t} must stay on its home shard (round {round})"
            );
        }
    }
    // The hash actually spreads: 12 tenants over 4 shards must not pile
    // onto one shard (a degenerate hash would defeat sharding entirely).
    let mut per_shard = [0usize; 4];
    for &h in &homes {
        per_shard[h as usize] += 1;
    }
    assert!(per_shard.iter().all(|&n| n >= 1), "12 tenants left a shard unused: {per_shard:?}");
    assert_conserved(&core);
}

#[test]
fn least_loaded_breaks_ties_to_the_lowest_shard() {
    // Equal loads: shard 0 wins. Each booking then tips the ranking, so an
    // idle core round-robins 0,1,2 — and completions re-open the tie in
    // favour of the lowest id again.
    let mut core = core(PlacementPolicy::LeastLoaded, 3, 100);
    let t = core.add_tenant(100);
    assert_eq!(core.submit(t), Placement::Placed(0), "empty core: tie to lowest id");
    assert_eq!(core.submit(t), Placement::Placed(1));
    assert_eq!(core.submit(t), Placement::Placed(2));
    assert_eq!(core.submit(t), Placement::Placed(0), "all equal again: tie to lowest id");

    core.complete(1, t);
    core.complete(2, t);
    // Loads now 2,0,0 — shard 1 beats shard 2 on id.
    assert_eq!(core.submit(t), Placement::Placed(1));
    assert_conserved(&core);
}

#[test]
fn overflow_sheds_to_least_loaded_sibling_then_rejects() {
    // Capacity 2 per shard. The preferred shard fills first (placed), then
    // overflow sheds — to the *least-loaded* sibling each time — and only
    // with every shard full does the core reject. Strict order:
    // placed*, shed*, rejected*.
    let mut core = core(PlacementPolicy::Affinity, 3, 2);
    let t = core.add_tenant(100);
    let home = affinity_shard(t, 3);

    let outcomes: Vec<Placement> = (0..8).map(|_| core.submit(t)).collect();
    assert_eq!(outcomes[0], Placement::Placed(home));
    assert_eq!(outcomes[1], Placement::Placed(home), "home has capacity 2");
    // Four sheds fill the two siblings, least-loaded first (ties by id).
    let siblings: Vec<ShardId> = (0..3).filter(|&s| s != home).collect();
    assert_eq!(outcomes[2], Placement::Shed { from: home, to: siblings[0] });
    assert_eq!(outcomes[3], Placement::Shed { from: home, to: siblings[1] }, "second shed balances");
    assert_eq!(outcomes[4], Placement::Shed { from: home, to: siblings[0] });
    assert_eq!(outcomes[5], Placement::Shed { from: home, to: siblings[1] });
    // Everything is full: reject, repeatably.
    assert_eq!(outcomes[6], Placement::Rejected);
    assert_eq!(outcomes[7], Placement::Rejected);

    let c = core.counters();
    assert_eq!((c.placed, c.shed, c.rejected), (2, 4, 2));
    assert_conserved(&core);

    // One completion on the home shard re-opens it: the next submit is
    // placed (preferred again), not shed.
    core.complete(home, t);
    assert_eq!(core.submit(t), Placement::Placed(home));
    assert_conserved(&core);
}

#[test]
fn per_tenant_bound_sheds_even_with_shard_capacity_to_spare() {
    // Shard capacity 8 but the tenant's own per-shard bound is 1: the
    // second job sheds (its home shard has room, just not for *it*), and
    // the third — with its bound met on every shard — rejects while both
    // shards still have seven free slots.
    let mut core = core(PlacementPolicy::Affinity, 2, 8);
    let t = core.add_tenant(1);
    let home = affinity_shard(t, 2);
    let sibling = 1 - home;

    assert_eq!(core.submit(t), Placement::Placed(home));
    assert_eq!(core.submit(t), Placement::Shed { from: home, to: sibling });
    assert_eq!(core.submit(t), Placement::Rejected);
    assert!(core.pending(home) < 8 && core.pending(sibling) < 8);

    // Another tenant with a roomier bound is unaffected by the first
    // tenant's exhaustion: per-tenant bounds are per-tenant.
    let u = core.add_tenant(8);
    assert_eq!(core.submit(u), Placement::Placed(affinity_shard(u, 2)));
    assert_conserved(&core);
}

#[test]
fn fresh_reports_bias_ranking_and_stale_reports_do_not() {
    // A report makes a shard look busy (pending + reported depth); after
    // STALE_AFTER core events it expires and the ranking falls back to the
    // core's own exact pending counts — a shard that stopped reporting is
    // judged by facts, not by its last word.
    let mut core = core(PlacementPolicy::LeastLoaded, 2, 1_000);
    let t = core.add_tenant(1_000);

    core.load_report(0, 90, 10); // shard 0 claims depth 100
    assert_eq!(core.load(0), 100);
    assert_eq!(core.load(1), 0);
    assert_eq!(core.submit(t), Placement::Placed(1), "the reported backlog on shard 0 must repel placement");

    // Age the report out with unrelated events (each submit/complete pair
    // advances the clock by 2 and cancels out in the pending counts).
    for _ in 0..STALE_AFTER {
        let p = core.submit(t);
        core.complete(p.shard().expect("capacity is ample"), t);
    }
    assert_eq!(core.counters().stale_reports, 1, "the aged report expired exactly once");
    assert_eq!(core.load(0), core.pending(0), "expired report biases nothing");

    // With the report gone, only exact pending ranks the shards: shard 1
    // carries the one early booking, so shard 0 wins again.
    assert_eq!(core.pending(0), core.pending(1) - 1);
    assert_eq!(core.submit(t), Placement::Placed(0));

    // A replacement report re-biases immediately.
    core.load_report(0, 50, 0);
    assert_eq!(core.submit(t), Placement::Placed(1));
    assert_conserved(&core);
}

#[test]
fn report_refresh_protocol_is_wanted_then_satisfied() {
    // wants_report drives the shell's amortized probing: owed before any
    // report, satisfied right after one, owed again once the report ages
    // (and certainly once it has expired entirely).
    let mut core = core(PlacementPolicy::LeastLoaded, 2, 100);
    let t = core.add_tenant(100);
    assert!(core.wants_report(0) && core.wants_report(1), "no reports held yet");

    core.load_report(0, 0, 0);
    assert!(!core.wants_report(0), "a fresh report satisfies the shard");
    assert!(core.wants_report(1), "sibling is still owed one");

    for _ in 0..STALE_AFTER {
        let p = core.submit(t);
        core.complete(p.shard().expect("capacity is ample"), t);
    }
    assert!(core.wants_report(0), "an aged-out report is owed a refresh");
    assert_conserved(&core);
}

#[test]
fn blocking_route_never_rejects_and_may_overbook() {
    // The blocking path models gate backpressure, not shedding: route()
    // books the preferred shard unconditionally, even past its capacity —
    // the shard's own gates make the caller wait, the core just keeps the
    // books. (Affinity: all of a tenant's blocking jobs stay home.)
    let mut core = core(PlacementPolicy::Affinity, 2, 2);
    let t = core.add_tenant(100);
    let home = affinity_shard(t, 2);
    for _ in 0..5 {
        assert_eq!(core.route(t), home);
    }
    assert_eq!(core.pending(home), 5, "overbooked past capacity 2");
    assert_eq!(core.counters().rejected, 0);
    // try-path overflow still sheds around the overbooked home shard.
    assert_eq!(core.submit(t), Placement::Shed { from: home, to: 1 - home });
    for _ in 0..6 {
        core.complete(core_shard_of_next_completion(&core, t), t);
    }
    assert_eq!(core.pending_total(), 0);
    assert_conserved(&core);
}

/// Pick any shard holding a booking for `tenant` (lowest id first) — the
/// rig's stand-in for "some job finished".
fn core_shard_of_next_completion(core: &PlacementCore, tenant: TenantId) -> ShardId {
    (0..core.shard_count() as ShardId)
        .find(|&s| core.tenant_pending(s, tenant) > 0)
        .expect("a booking is outstanding")
}

#[test]
fn conservation_holds_under_a_randomized_event_storm() {
    // A scripted splitmix64 storm of submits, routes, completions and load
    // reports over mixed policies and tight capacities. After *every*
    // event: submitted == placed + shed + rejected, outstanding bookings
    // match the counter delta, and no tenant exceeds its per-shard bound.
    // Failures reproduce exactly from the printed seed.
    for seed in 0..8u64 {
        let policy = if seed % 2 == 0 { PlacementPolicy::Affinity } else { PlacementPolicy::LeastLoaded };
        let mut core = core(policy, 3, 4);
        let bounds = [1usize, 2, 4];
        let tenants: Vec<TenantId> = bounds.iter().map(|&b| core.add_tenant(b)).collect();
        let mut booked: Vec<(ShardId, TenantId)> = Vec::new();

        let mut state = seed;
        let mut rng = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };

        for step in 0..600 {
            let t = tenants[(rng() % tenants.len() as u64) as usize];
            match rng() % 10 {
                // Submits dominate so capacities actually fill.
                0..=4 => {
                    if let Some(s) = core.submit(t).shard() {
                        booked.push((s, t));
                    }
                }
                5 => booked.push((core.route(t), t)),
                6..=8 => {
                    if !booked.is_empty() {
                        let (s, t) = booked.swap_remove((rng() % booked.len() as u64) as usize);
                        core.complete(s, t);
                    }
                }
                _ => core.load_report((rng() % 3) as ShardId, (rng() % 32) as usize, (rng() % 4) as usize),
            }

            assert_conserved(&core);
            assert_eq!(
                core.pending_total(),
                booked.len(),
                "seed {seed} step {step}: core bookings drifted from the rig's ledger"
            );
            // route() may overbook capacity by design, so the storm
            // asserts exact agreement with its own ledger rather than the
            // bounds (the try-only storm below asserts the bounds).
            for si in 0..core.shard_count() as ShardId {
                for &t in &tenants {
                    assert_eq!(
                        core.tenant_pending(si, t),
                        booked.iter().filter(|&&(s, bt)| s == si && bt == t).count(),
                        "seed {seed} step {step}: per-tenant pending drifted"
                    );
                }
            }
        }

        // Drain and verify quiescence: all books balance to zero.
        for (s, t) in booked.drain(..) {
            core.complete(s, t);
        }
        assert_eq!(core.pending_total(), 0, "seed {seed}: drained core holds no bookings");
        assert_conserved(&core);
    }
}

#[test]
fn try_only_storm_never_exceeds_any_bound() {
    // The pure-try variant of the storm: with route() excluded, the core
    // must never book past a shard's capacity or a tenant's per-shard
    // bound — the shedding path's whole contract.
    for seed in 100..104u64 {
        let mut core = core(PlacementPolicy::LeastLoaded, 3, 3);
        let bounds = [1usize, 2, 3];
        let tenants: Vec<TenantId> = bounds.iter().map(|&b| core.add_tenant(b)).collect();
        let mut booked: Vec<(ShardId, TenantId)> = Vec::new();

        let mut state = seed;
        let mut rng = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };

        for step in 0..400 {
            let t = tenants[(rng() % tenants.len() as u64) as usize];
            if rng() % 3 < 2 {
                if let Some(s) = core.submit(t).shard() {
                    booked.push((s, t));
                }
            } else if !booked.is_empty() {
                let (s, t) = booked.swap_remove((rng() % booked.len() as u64) as usize);
                core.complete(s, t);
            }
            for (si, view) in core.shard_views().iter().enumerate() {
                assert!(
                    view.pending <= view.capacity,
                    "seed {seed} step {step}: shard {si} booked past capacity"
                );
                for (ti, &bound) in bounds.iter().enumerate() {
                    assert!(
                        core.tenant_pending(si as ShardId, tenants[ti]) <= bound,
                        "seed {seed} step {step}: tenant {ti} past its bound on shard {si}"
                    );
                }
            }
            assert_conserved(&core);
        }
    }
}
