//! Wire-protocol property and hostility tests.
//!
//! Two layers, matching the module's own split:
//!
//! * **Pure framing** — proptest round-trips over `render_submit` /
//!   `parse_request` / `escape_line`, driven by the shared spec generator
//!   (`tests/common/mod.rs`) so the fuzzed payloads are real programs,
//!   not just token soup.
//! * **A live server** — generated requests over real TCP come back with
//!   the value `tb_spec::interpret` computes for the same program, and
//!   hostile traffic (oversized lines, split frames, interleaved partial
//!   writes, garbage bytes, mid-request disconnects) is answered with
//!   `ERR` or a dropped connection — never a worker panic, and never a
//!   leaked gate slot or placement booking, which the quiescence check at
//!   the end of every server test proves from rolled-up snapshots.

use std::io::Write;
use std::net::TcpStream;

use proptest::prelude::*;
use tb_service::wire::{
    client_roundtrip, escape_line, parse_request, read_final_response, render_submit, unescape_line, Request,
    ServerHandle, WireServer, MAX_LINE_BYTES,
};
use tb_service::{PlacementPolicy, ShardConfig, ShardSnapshot, ShardedRuntime};
use tb_spec::{interpret, parse_spec, SpecTier};

#[path = "../../../tests/common/mod.rs"]
mod common;

fn arb_tier() -> impl Strategy<Value = SpecTier> {
    (0u8..3).prop_map(|t| match t {
        0 => SpecTier::Auto,
        1 => SpecTier::Scalar,
        _ => SpecTier::Simd,
    })
}

fn arb_tenant() -> impl Strategy<Value = String> {
    (0u32..6, any::<bool>()).prop_map(|(i, dash)| if dash { format!("client-{i}") } else { format!("t_{i}") })
}

/// A generated (source, root-args, expected-value) triple: a real,
/// terminating spec program rendered back to surface syntax.
fn arb_program() -> impl Strategy<Value = (String, Vec<i64>, i64)> {
    any::<u64>().prop_map(|seed| {
        let (spec, root) = common::gen_spec(seed);
        let source = common::spec_source(&spec);
        let expected = interpret(&spec, &root);
        (source, root, expected)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// render → parse is the identity on every generated request.
    #[test]
    fn submit_round_trips_through_the_framing(
        tenant in arb_tenant(),
        tier in arb_tier(),
        program in arb_program(),
    ) {
        let (source, args, _expected) = program;
        let line = render_submit(&tenant, tier, &args, &source);
        prop_assert!(line.len() <= MAX_LINE_BYTES, "generated programs fit one frame");
        let parsed = parse_request(&line);
        prop_assert_eq!(
            parsed,
            Ok(Request::Submit { tenant, tier, args, source })
        );
    }

    /// The rendered source itself still parses as the same program — the
    /// renderer and the spec parser agree on the grammar.
    #[test]
    fn rendered_source_reparses_to_the_same_semantics(program in arb_program()) {
        let (source, args, expected) = program;
        let spec = parse_spec(&source).expect("rendered source is grammatical");
        prop_assert_eq!(interpret(&spec, &args), expected);
    }

    /// Escaping is injective onto one line and inverts exactly.
    #[test]
    fn escape_round_trips_and_stays_single_line(msg in arb_hostile_text()) {
        let escaped = escape_line(&msg);
        prop_assert!(!escaped.contains('\n') && !escaped.contains('\r'));
        prop_assert_eq!(unescape_line(&escaped), msg);
    }

    /// Arbitrary mutations of a valid line never panic the parser: every
    /// input is either accepted or answered with an error string.
    #[test]
    fn parser_never_panics_on_mutated_lines(
        program in arb_program(),
        cut in any::<u16>(),
        junk in arb_hostile_text(),
    ) {
        let (source, args, _expected) = program;
        let line = render_submit("t", SpecTier::Auto, &args, &source);
        let cut = (cut as usize) % (line.len() + 1);
        // Truncations, splices and pure junk all go through the total
        // function parse_request; the property is simply "it returns".
        let _ = parse_request(&line[..floor_char(&line, cut)]);
        let _ = parse_request(&format!("{}{junk}", &line[..floor_char(&line, cut)]));
        let _ = parse_request(&junk);
    }
}

/// Printable-ish text with embedded newlines, backslashes and wide chars —
/// the shapes that break naive escaping.
fn arb_hostile_text() -> impl Strategy<Value = String> {
    proptest::collection::vec((0u8..7, any::<u8>()), 0..40).prop_map(|picks| {
        let mut s = String::new();
        for (kind, b) in picks {
            match kind {
                0 => s.push('\n'),
                1 => s.push('\\'),
                2 => s.push('\r'),
                3 => s.push('§'),
                4 => s.push(' '),
                _ => s.push((b'a' + (b % 26)) as char),
            }
        }
        s
    })
}

/// Largest char boundary ≤ `i` (mutation offsets may land mid-codepoint).
fn floor_char(s: &str, mut i: usize) -> usize {
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

// ---------------------------------------------------------------------------
// Live-server tests.
// ---------------------------------------------------------------------------

fn start_server() -> (std::net::SocketAddr, ServerHandle, ShardedRuntime) {
    let rt = ShardedRuntime::with_config(ShardConfig::uniform(2, 1).policy(PlacementPolicy::LeastLoaded));
    let server = WireServer::bind("127.0.0.1:0", rt.clone()).expect("bind loopback");
    let addr = server.local_addr();
    (addr, server.spawn(), rt)
}

/// Drain the server and assert nothing leaked: no gate slot held, no
/// placement booking outstanding, and placement conservation intact.
fn shutdown_and_audit(handle: ServerHandle, rt: &ShardedRuntime) {
    handle.shutdown();
    let snap: ShardSnapshot = rt.snapshot();
    assert_eq!(snap.gate_slots_held(), 0, "drained server holds a gate slot: {snap:?}");
    assert_eq!(snap.inflight(), 0, "drained server still runs a job: {snap:?}");
    let p = snap.placement;
    assert_eq!(p.submitted, p.placed + p.shed + p.rejected, "conservation broke: {p:?}");
    assert_eq!(p.placed + p.shed, p.completed + p.abandoned, "a placement booking leaked: {p:?}");
    assert_eq!(p.abandoned, 0, "the core approved a submission some gate then refused: {p:?}");
}

#[test]
fn generated_programs_round_trip_through_a_live_server() {
    let (addr, handle, rt) = start_server();
    // Deterministic seeds; a failure names the seed in the assert.
    for seed in 0..24u64 {
        let (spec, root) = common::gen_spec(seed);
        let source = common::spec_source(&spec);
        let expected = interpret(&spec, &root);
        let tier = match seed % 3 {
            0 => SpecTier::Auto,
            1 => SpecTier::Scalar,
            _ => SpecTier::Simd,
        };
        let line = render_submit(&format!("fuzz-{}", seed % 5), tier, &root, &source);
        let responses = client_roundtrip(addr, &[line.as_str()]).expect("round trip");
        let response = &responses[0];
        let value = response
            .strip_prefix("OK ")
            .and_then(|r| r.split(' ').nth(1))
            .unwrap_or_else(|| panic!("seed {seed}: expected OK, got {response:?}"));
        assert_eq!(value.parse::<i64>().ok(), Some(expected), "seed {seed} on {source}");
    }
    shutdown_and_audit(handle, &rt);
}

#[test]
fn oversized_line_is_refused_without_harm() {
    let (addr, handle, rt) = start_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    // A line past MAX_LINE_BYTES with no newline: the server must answer
    // ERR (or reset the connection — ERR-or-drop), not buffer forever.
    // The write itself may fail with a broken pipe once the server slams
    // the door mid-stream; that is the drop outcome, not a test failure.
    let junk = vec![b'x'; MAX_LINE_BYTES + 8 * 1024];
    let wrote = stream.write_all(&junk);
    let final_response = read_final_response(&mut stream).unwrap_or_default();
    assert!(
        final_response.starts_with("ERR ") || final_response.is_empty() || wrote.is_err(),
        "got {final_response:?}"
    );
    drop(stream);

    // The server is still healthy for the next client.
    let ok = client_roundtrip(
        addr,
        &["SUBMIT default auto [3] spec f(n) { base (n < 2) { reduce n; } else { spawn f(n - 1); } }"],
    )
    .expect("post-attack round trip");
    assert!(ok[0].starts_with("OK "), "got {:?}", ok[0]);
    shutdown_and_audit(handle, &rt);
}

#[test]
fn garbage_bytes_get_err_or_drop_never_a_panic() {
    let (addr, handle, rt) = start_server();
    let attacks: &[&[u8]] = &[
        b"\xff\xfe\xfd garbage that is not utf8\n",
        b"\x00\x00\x00\x00\n",
        b"SUBMIT \xc3\x28 auto [1] spec\n", // invalid continuation byte
    ];
    for attack in attacks {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(attack).expect("write attack");
        // Half-close: some attacks are valid UTF-8 lines, which get an ERR
        // on a connection the server keeps open — signal end-of-requests
        // so reading to EOF below terminates.
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let response = read_final_response(&mut stream).unwrap_or_default();
        // ERR-or-drop: an empty read means the server just closed, which
        // is also acceptable; a panic would poison the accept loop and
        // fail the healthy-afterwards check below.
        assert!(response.is_empty() || response.starts_with("ERR "), "got {response:?} for {attack:?}");
    }
    let ok = client_roundtrip(addr, &["STATS"]).expect("server alive");
    assert!(ok[0].starts_with("OK "), "got {:?}", ok[0]);
    shutdown_and_audit(handle, &rt);
}

#[test]
fn split_frames_reassemble_into_one_request() {
    let (addr, handle, rt) = start_server();
    let line = "SUBMIT default auto [10] spec f(n) { base (n < 2) { reduce n; } else { spawn f(n - 1); spawn f(n - 2); } }\n";
    let mut stream = TcpStream::connect(addr).expect("connect");
    // Dribble the request one fragment at a time, flushing between
    // fragments so each arrives as its own TCP segment.
    for chunk in line.as_bytes().chunks(7) {
        stream.write_all(chunk).expect("write fragment");
        stream.flush().expect("flush fragment");
    }
    let response = read_one_line(&mut stream);
    assert_eq!(response, "OK 1 55", "fib(10) over split frames");
    shutdown_and_audit(handle, &rt);
}

#[test]
fn interleaved_partial_writers_each_get_their_own_answer() {
    let (addr, handle, rt) = start_server();
    let a_line = "SUBMIT alice auto [8] spec f(n) { base (n < 2) { reduce n; } else { spawn f(n - 1); spawn f(n - 2); } }\n";
    let b_line = "SUBMIT bob auto [9] spec f(n) { base (n < 2) { reduce n; } else { spawn f(n - 1); spawn f(n - 2); } }\n";
    let mut a = TcpStream::connect(addr).expect("connect a");
    let mut b = TcpStream::connect(addr).expect("connect b");
    // Alternate partial writes between the two connections: per-connection
    // framing must keep the interleaved fragments apart.
    let (abytes, bbytes) = (a_line.as_bytes(), b_line.as_bytes());
    let step = 11;
    let mut i = 0;
    while i < abytes.len().max(bbytes.len()) {
        if i < abytes.len() {
            a.write_all(&abytes[i..(i + step).min(abytes.len())]).expect("write a");
        }
        if i < bbytes.len() {
            b.write_all(&bbytes[i..(i + step).min(bbytes.len())]).expect("write b");
        }
        i += step;
    }
    let ra = read_one_line(&mut a);
    let rb = read_one_line(&mut b);
    assert!(ra.starts_with("OK ") && ra.ends_with(" 21"), "fib(8) on a, got {ra:?}");
    assert!(rb.starts_with("OK ") && rb.ends_with(" 34"), "fib(9) on b, got {rb:?}");
    shutdown_and_audit(handle, &rt);
}

#[test]
fn mid_request_disconnect_leaves_the_server_healthy() {
    let (addr, handle, rt) = start_server();
    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        // Half a request, then vanish. The torn line must be dropped.
        stream.write_all(b"SUBMIT default auto [20] spec f(n) { base").expect("partial write");
        drop(stream);
    }
    // Also: a *complete* request whose client vanishes before reading the
    // answer — the write fails, the job still completes and retires.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            b"SUBMIT default auto [5] spec f(n) { base (n < 2) { reduce n; } else { spawn f(n - 1); } }\n",
        )
        .expect("full write");
    drop(stream);

    let ok = client_roundtrip(addr, &["SUBMIT default scalar [12] spec f(n) { base (n < 2) { reduce n; } else { spawn f(n - 1); spawn f(n - 2); } }"])
        .expect("server alive after disconnects");
    assert!(ok[0].ends_with(" 144"), "fib(12), got {:?}", ok[0]);
    shutdown_and_audit(handle, &rt);
}

#[test]
fn bad_specs_come_back_as_escaped_caret_diagnostics() {
    let (addr, handle, rt) = start_server();
    let responses = client_roundtrip(
        addr,
        &[
            "SUBMIT default auto [3] spec f(n) { base (n < 2) { reduce n; } else { oops; } }",
            "SUBMIT default auto [3] spec f(n) { base (n < 2) { spawn f(n - 1); } else { reduce n; } }",
        ],
    )
    .expect("round trip");
    for response in &responses {
        assert!(response.starts_with("ERR "), "got {response:?}");
        assert!(!response.contains('\n'), "ERR payload must be one line");
    }
    // The first is a parse error: unescaping restores the multi-line caret
    // rendering with the offending source line and a caret.
    let diag = unescape_line(responses[0].strip_prefix("ERR ").unwrap());
    assert!(diag.contains('\n') && diag.contains('^'), "caret diagnostic survived: {diag:?}");
    shutdown_and_audit(handle, &rt);
}

fn read_one_line(stream: &mut TcpStream) -> String {
    use std::io::{BufRead, BufReader};
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}
