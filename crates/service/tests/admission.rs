//! Threaded integration tests for the admission scheduler: the
//! starvation regression pair (weighted-fair vs the legacy tenant-blind
//! FIFO gate, same arrival script), end-to-end preemption through a real
//! pool (park at a superstep boundary, run the interactive job, resume),
//! per-tenant shedding, and stats plumbing.
//!
//! Determinism here comes from *structure*, not sleeps: a `SpinUntil` plug
//! occupies the single pool slot while the test scripts arrivals, so
//! admission order is decided entirely by the scheduler — and the
//! interactive job in the preemption test can only complete at all if the
//! batch job actually swapped out.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use tb_core::prelude::*;
use tb_service::{Runtime, RuntimeConfig, TenantSpec};

/// Reduces to 1 and records its tag in the shared log when executed.
struct Mark {
    tag: u32,
    log: Arc<Mutex<Vec<u32>>>,
}

impl BlockProgram for Mark {
    type Store = Vec<u32>;
    type Reducer = u64;
    fn arity(&self) -> usize {
        1
    }
    fn make_root(&self) -> Vec<u32> {
        vec![0]
    }
    fn make_reducer(&self) -> u64 {
        0
    }
    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }
    fn expand(&self, block: &mut Vec<u32>, _out: &mut BucketSet<Vec<u32>>, red: &mut u64) {
        for _ in block.drain(..) {
            self.log.lock().unwrap().push(self.tag);
            *red += 1;
        }
    }
}

/// Respawns its single task every superstep until `release` fires, then
/// reduces to 1 — an unbounded supply of superstep boundaries, which makes
/// it both a pool *plug* (occupies its slot for as long as the test needs)
/// and the ideal preemption target.
struct SpinUntil {
    release: Arc<AtomicBool>,
    started: Arc<AtomicBool>,
}

impl BlockProgram for SpinUntil {
    type Store = Vec<u32>;
    type Reducer = u64;
    fn arity(&self) -> usize {
        1
    }
    fn make_root(&self) -> Vec<u32> {
        vec![0]
    }
    fn make_reducer(&self) -> u64 {
        0
    }
    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }
    fn expand(&self, block: &mut Vec<u32>, out: &mut BucketSet<Vec<u32>>, red: &mut u64) {
        self.started.store(true, Ordering::Release);
        for t in block.drain(..) {
            if self.release.load(Ordering::Acquire) {
                *red += 1;
            } else {
                out.bucket(0).push(t);
            }
        }
    }
}

fn await_flag(flag: &AtomicBool) {
    while !flag.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
}

fn cfg() -> SchedConfig {
    SchedConfig::basic(4, 64)
}

/// The shared arrival script for the starvation pair: plug the single pool
/// slot, queue 40 heavy-tenant jobs, then ONE light-tenant job, release
/// the plug and let everything drain. Returns the light job's position in
/// the execution order (0 = ran first after the plug).
fn light_position(fifo: bool) -> usize {
    let rt = Runtime::with_config(RuntimeConfig { threads: 1, max_inflight: 1, max_parked: 0, fifo });
    let heavy = rt.register_tenant(TenantSpec::new("heavy", 64));
    let light = rt.register_tenant(TenantSpec::new("light", 8));
    let log = Arc::new(Mutex::new(Vec::new()));
    let (release, started) = (Arc::new(AtomicBool::new(false)), Arc::new(AtomicBool::new(false)));

    let plug = rt.submit_as(
        heavy,
        SpinUntil { release: Arc::clone(&release), started: Arc::clone(&started) },
        cfg(),
        SchedulerKind::Seq,
    );
    await_flag(&started); // the slot is occupied: arrivals below only queue
    let heavies: Vec<_> = (0..40)
        .map(|_| rt.submit_as(heavy, Mark { tag: 0, log: Arc::clone(&log) }, cfg(), SchedulerKind::Seq))
        .collect();
    let light_h = rt.submit_as(light, Mark { tag: 1, log: Arc::clone(&log) }, cfg(), SchedulerKind::Seq);
    release.store(true, Ordering::Release);

    assert_eq!(plug.wait(), Ok(1));
    for h in heavies {
        assert_eq!(h.wait(), Ok(1));
    }
    assert_eq!(light_h.wait(), Ok(1));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 41);
    log.iter().position(|&t| t == 1).expect("light job ran")
}

/// The starvation regression: under weighted-fair admission a light tenant
/// behind a 40-job flood is admitted within a couple of service times.
#[test]
fn fair_admission_bounds_a_light_tenants_wait() {
    let pos = light_position(false);
    assert!(pos <= 3, "light tenant ran at position {pos}; fair admission should bound this to ~0");
}

/// The same script on the legacy FIFO gate semantics starves the light
/// tenant to the back of the flood — the failure mode the admission
/// scheduler exists to fix, preserved as the A/B baseline. (If this test
/// ever fails, `fifo: true` no longer reproduces the old global gate.)
#[test]
fn fifo_gate_semantics_starve_the_light_tenant() {
    let pos = light_position(true);
    assert!(pos >= 40, "FIFO should run the light tenant dead last, not at position {pos}");
}

/// End-to-end preemption through a real pool: one worker, one slot. The
/// interactive job can ONLY complete if the running batch job parks at a
/// superstep boundary and hands over its slot; the batch job must then
/// resume and finish with the right answer.
#[test]
fn interactive_tenant_preempts_batch_work_and_batch_resumes() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 1, max_inflight: 1, max_parked: 4, fifo: false });
    let batch = rt.register_tenant(TenantSpec::new("batch", 8));
    let interactive = rt.register_tenant(TenantSpec::new("interactive", 8).priority(1));
    let (release, started) = (Arc::new(AtomicBool::new(false)), Arc::new(AtomicBool::new(false)));
    let log = Arc::new(Mutex::new(Vec::new()));

    let b = rt.submit_preemptible(
        batch,
        SpinUntil { release: Arc::clone(&release), started: Arc::clone(&started) },
        cfg(),
    );
    await_flag(&started); // batch job is mid-run on the only worker
    let i = rt.submit_as(interactive, Mark { tag: 7, log: Arc::clone(&log) }, cfg(), SchedulerKind::Seq);
    // Completing at all proves the swap-out happened: there is no second
    // slot or worker this job could have used.
    assert_eq!(i.wait(), Ok(1));

    let stats = rt.stats();
    assert!(stats.preemptions >= 1, "the batch job must have parked: {stats:?}");
    assert!(stats.tenants[batch as usize].counters.preemptions >= 1);

    release.store(true, Ordering::Release);
    assert_eq!(b.wait(), Ok(1), "the parked frontier resumed and finished correctly");
    let stats = rt.stats();
    assert!(stats.resumes >= 1, "the parked job must have been resumed: {stats:?}");
    assert_eq!(stats.parked, 0, "nothing left in the park pool at quiescence");
    assert_eq!(stats.parked_tasks, 0);
}

/// Per-tenant bounds are isolated: a tenant at its pending cap sheds its
/// own `try_submit_as`, while a neighbour tenant's submissions still pass.
#[test]
fn tenant_bound_sheds_without_touching_neighbours() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 1, max_inflight: 1, max_parked: 0, fifo: false });
    let a = rt.register_tenant(TenantSpec::new("a", 2));
    let b = rt.register_tenant(TenantSpec::new("b", 2));
    let log = Arc::new(Mutex::new(Vec::new()));
    let (release, started) = (Arc::new(AtomicBool::new(false)), Arc::new(AtomicBool::new(false)));

    let plug = rt.submit_as(
        a,
        SpinUntil { release: Arc::clone(&release), started: Arc::clone(&started) },
        cfg(),
        SchedulerKind::Seq,
    );
    await_flag(&started);
    let second = rt.submit_as(a, Mark { tag: 1, log: Arc::clone(&log) }, cfg(), SchedulerKind::Seq);
    // Tenant a holds 2 of its 2 gate slots (one running, one waiting).
    let shed = rt.try_submit_as(a, Mark { tag: 2, log: Arc::clone(&log) }, cfg(), SchedulerKind::Seq);
    let spec = match shed {
        Err(prog) => prog,
        Ok(_) => panic!("tenant a is at its bound; submission should shed"),
    };
    assert_eq!(spec.tag, 2, "the program comes back unchanged");
    // Tenant b has its own gate and is unaffected by a's saturation.
    let bh = rt
        .try_submit_as(b, Mark { tag: 3, log: Arc::clone(&log) }, cfg(), SchedulerKind::Seq)
        .unwrap_or_else(|_| panic!("tenant b must not be blocked by tenant a's flood"));

    release.store(true, Ordering::Release);
    assert_eq!(plug.wait(), Ok(1));
    assert_eq!(second.wait(), Ok(1));
    assert_eq!(bh.wait(), Ok(1));

    let stats = rt.stats();
    assert_eq!(stats.tenants[a as usize].counters.submitted, 2, "the shed job never entered");
    assert_eq!(stats.tenants[b as usize].counters.submitted, 1);
    assert_eq!(stats.tenants[a as usize].pending, 0, "gate slots all returned");
    assert_eq!(stats.tenants[b as usize].pending, 0);
}

/// Stats plumbing: per-tenant snapshots carry names, weights, priorities
/// and consistent counters; global aggregates match.
#[test]
fn stats_expose_tenant_queues_and_counters() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 4, max_parked: 2, fifo: false });
    let client = rt.register_tenant(TenantSpec::new("client", 4).weight(3).priority(1));
    let log = Arc::new(Mutex::new(Vec::new()));

    let h1 = rt.submit(Mark { tag: 0, log: Arc::clone(&log) }, cfg(), SchedulerKind::Seq);
    let h2 = rt.submit_as(client, Mark { tag: 1, log: Arc::clone(&log) }, cfg(), SchedulerKind::Seq);
    let h3 = rt.submit_as(client, Mark { tag: 1, log: Arc::clone(&log) }, cfg(), SchedulerKind::Seq);
    assert_eq!(h1.wait(), Ok(1));
    assert_eq!(h2.wait(), Ok(1));
    assert_eq!(h3.wait(), Ok(1));

    let stats = rt.stats();
    assert_eq!(stats.tenants.len(), 2, "default tenant + one registered");
    let default = &stats.tenants[tb_service::DEFAULT_TENANT as usize];
    assert_eq!(default.name, "default");
    let snap = &stats.tenants[client as usize];
    assert_eq!((snap.name.as_str(), snap.weight, snap.priority), ("client", 3, 1));
    assert_eq!(snap.counters.submitted, 2);
    assert_eq!(snap.counters.completed, 2);
    assert_eq!(snap.counters.admissions, 2);
    assert_eq!(default.counters.submitted, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.max_inflight, 4);
    assert_eq!(stats.max_parked, 2);
    assert_eq!((stats.inflight, stats.waiting, stats.parked), (0, 0, 0), "quiescent");
}

/// Sums the items of its chunk — the payload for the bulk-merge tests.
struct SumChunk(Vec<u64>);

impl BlockProgram for SumChunk {
    type Store = Vec<u64>;
    type Reducer = u64;
    fn arity(&self) -> usize {
        1
    }
    fn make_root(&self) -> Vec<u64> {
        self.0.clone()
    }
    fn make_reducer(&self) -> u64 {
        0
    }
    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }
    fn expand(&self, block: &mut Vec<u64>, _out: &mut BucketSet<Vec<u64>>, red: &mut u64) {
        *red += block.drain(..).sum::<u64>();
    }
}

/// `BulkHandle::wait_merged` through a real threaded pool: the adaptive
/// chunk cut is invisible to the caller — the fold over chunk results in
/// chunk order lands on the same total no matter how the items were cut or
/// which worker ran which chunk.
#[test]
fn bulk_wait_merged_folds_chunk_results_across_threads() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 8, max_parked: 0, fifo: false });
    let n = 10_000u64;
    let items: Vec<u64> = (0..n).collect();
    let bulk = rt.submit_bulk(items, cfg(), SchedulerKind::ReExpansion, SumChunk);
    assert!(bulk.chunks() >= 1);
    let total = bulk.wait_merged(0u64, |acc, chunk_sum| acc + chunk_sum).expect("no chunk fails");
    assert_eq!(total, n * (n - 1) / 2);

    // The bulk's chunks flow through the same per-tenant accounting as
    // ordinary jobs: every chunk counted submitted and completed, and all
    // gate slots returned.
    let stats = rt.stats();
    let default = &stats.tenants[tb_service::DEFAULT_TENANT as usize];
    assert_eq!(default.counters.submitted, default.counters.completed);
    assert!(default.counters.completed >= bulk_chunks_lower_bound(), "chunks went through the gate");
    assert_eq!(default.pending, 0);
}

/// At least one chunk for any non-empty bulk — kept as a named constant so
/// the assertion above reads as intent, not magic.
fn bulk_chunks_lower_bound() -> u64 {
    1
}

/// `wait_merged` error short-circuiting: cancel a bulk whose chunks are
/// stuck behind a plug; the merged wait must surface `Cancelled` instead
/// of a partial fold, and the merge closure must stop being called.
#[test]
fn bulk_wait_merged_short_circuits_on_a_cancelled_chunk() {
    // A wide gate (submission never blocks) over a single worker: the plug
    // pins the pool, so every bulk chunk is still queued when we cancel.
    let rt = Runtime::with_config(RuntimeConfig { threads: 1, max_inflight: 64, max_parked: 0, fifo: false });
    let (release, started) = (Arc::new(AtomicBool::new(false)), Arc::new(AtomicBool::new(false)));
    let plug = rt.submit(
        SpinUntil { release: Arc::clone(&release), started: Arc::clone(&started) },
        cfg(),
        SchedulerKind::Seq,
    );
    await_flag(&started); // the only worker is occupied: bulk chunks can only queue
    let bulk = rt.submit_bulk((0..64u64).collect(), cfg(), SchedulerKind::ReExpansion, SumChunk);
    bulk.cancel();
    release.store(true, Ordering::Release);
    assert_eq!(plug.wait(), Ok(1));

    let mut merges = 0u32;
    let merged = bulk.wait_merged(0u64, |acc, s| {
        merges += 1;
        acc + s
    });
    assert_eq!(merged, Err(tb_service::JobError::Cancelled), "cancellation surfaces, not a partial sum");
    assert_eq!(merges, 0, "every chunk was cancelled before running; nothing merged");

    let stats = rt.stats();
    let default = &stats.tenants[tb_service::DEFAULT_TENANT as usize];
    assert_eq!(default.pending, 0, "cancelled chunks still return their gate slots");
}

/// Per-tenant counters roll up identically through a `ShardSnapshot`: the
/// same `TenantSnapshot` structures a standalone runtime exposes arrive
/// per shard, and summing a tenant across shards accounts for every job it
/// submitted anywhere — the placement layer adds routing, not a second
/// bookkeeping scheme.
#[test]
fn shard_snapshot_rolls_up_the_same_tenant_counters() {
    use tb_service::{PlacementPolicy, ShardConfig, ShardedRuntime};

    let rt = ShardedRuntime::with_config(ShardConfig::uniform(2, 1).policy(PlacementPolicy::LeastLoaded));
    let log = Arc::new(Mutex::new(Vec::new()));
    let client = rt.register_tenant(TenantSpec::new("client", 4).weight(3).priority(1));

    let handles: Vec<_> = (0..6)
        .map(|i| rt.submit_as(client, Mark { tag: i, log: Arc::clone(&log) }, cfg(), SchedulerKind::Seq))
        .collect();
    for h in handles {
        assert_eq!(h.wait(), Ok(1));
    }

    let snap = rt.snapshot();
    assert_eq!(snap.shards.len(), 2);
    // Identity and spec fields survive per shard...
    for stats in &snap.shards {
        let t = &stats.tenants[client as usize];
        assert_eq!((t.name.as_str(), t.weight, t.priority), ("client", 3, 1));
        assert_eq!(t.counters.submitted, t.counters.completed, "per-shard books balance");
        assert_eq!(t.pending, 0);
    }
    // ...and the cross-shard sum accounts for every job exactly once.
    let submitted: u64 = snap.shards.iter().map(|s| s.tenants[client as usize].counters.submitted).sum();
    let completed: u64 = snap.shards.iter().map(|s| s.tenants[client as usize].counters.completed).sum();
    assert_eq!(submitted, 6);
    assert_eq!(completed, 6);
    // LeastLoaded over an idle pair spreads the load: both shards did work.
    assert!(
        snap.shards.iter().all(|s| s.tenants[client as usize].counters.submitted >= 1),
        "least-loaded placement left a shard idle: {snap:?}"
    );
    // The placement core agrees with the rolled-up tenant counters.
    assert_eq!(snap.placement.completed, submitted);
    assert_eq!(snap.gate_slots_held(), 0);
    assert_eq!(log.lock().unwrap().len(), 6);
}
