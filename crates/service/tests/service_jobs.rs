//! Integration tests for the service layer: multi-tenant submission,
//! cooperative cancellation, handle drop (detach), backpressure, and bulk
//! chunking — the behaviours a long-lived shared runtime must not get
//! wrong under concurrent clients.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tb_core::prelude::*;
use tb_service::{JobError, Runtime, RuntimeConfig};

/// Count the leaves of a depth-n binary tree: 2^n leaves, known answer,
/// exponential work — ideal for "did it actually run / stop" checks.
struct Tree(u32);

impl BlockProgram for Tree {
    type Store = Vec<u32>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Vec<u32> {
        vec![self.0]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Vec<u32>, out: &mut BucketSet<Vec<u32>>, red: &mut u64) {
        for n in block.drain(..) {
            if n == 0 {
                *red += 1;
            } else {
                out.bucket(0).push(n - 1);
                out.bucket(1).push(n - 1);
            }
        }
    }
}

/// A tree whose expansion also ticks a shared counter, so tests can observe
/// whether work kept happening after a cancel/drop.
struct CountingTree {
    depth: u32,
    ticks: Arc<AtomicU64>,
}

impl BlockProgram for CountingTree {
    type Store = Vec<u32>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Vec<u32> {
        vec![self.depth]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Vec<u32>, out: &mut BucketSet<Vec<u32>>, red: &mut u64) {
        self.ticks.fetch_add(block.len() as u64, Ordering::Relaxed);
        for n in block.drain(..) {
            if n == 0 {
                *red += 1;
            } else {
                out.bucket(0).push(n - 1);
                out.bucket(1).push(n - 1);
            }
        }
    }
}

#[test]
fn mixed_schedulers_coexist_on_one_pool() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 3, max_inflight: 32, ..RuntimeConfig::default() });
    let mut handles = Vec::new();
    for round in 0..4u32 {
        let depth = 8 + round;
        handles.push((depth, rt.submit(Tree(depth), SchedConfig::basic(4, 64), SchedulerKind::ReExpansion)));
        handles.push((
            depth,
            rt.submit(Tree(depth), SchedConfig::restart(4, 64, 16), SchedulerKind::RestartSimplified),
        ));
        handles.push((depth, rt.submit(Tree(depth), SchedConfig::reexpansion(4, 64), SchedulerKind::Seq)));
    }
    for (depth, h) in handles {
        assert_eq!(h.wait(), Ok(1u64 << depth), "depth {depth}");
    }
    let stats = rt.stats();
    assert_eq!(stats.submitted, 12);
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.inflight, 0);
    assert_eq!(stats.injector.full_waits, 0, "submission must never block on capacity");
}

#[test]
fn concurrent_clients_hammer_one_runtime() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 8, ..RuntimeConfig::default() });
    std::thread::scope(|s| {
        for client in 0..4 {
            let rt = rt.clone();
            s.spawn(move || {
                for i in 0..10u32 {
                    let depth = 6 + (client + i) % 5;
                    let kind = if i % 2 == 0 {
                        SchedulerKind::ReExpansion
                    } else {
                        SchedulerKind::RestartSimplified
                    };
                    let h = rt.submit(Tree(depth), SchedConfig::restart(4, 32, 8), kind);
                    assert_eq!(h.wait(), Ok(1u64 << depth));
                }
            });
        }
    });
    let stats = rt.stats();
    assert_eq!(stats.completed, 40);
    assert_eq!(stats.injector.full_waits, 0);
}

#[test]
fn cancellation_stops_expansion_promptly() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 4, ..RuntimeConfig::default() });
    let ticks = Arc::new(AtomicU64::new(0));
    // Depth 40: ~2^40 leaves, would run for hours — cancellation is the
    // only way this test can finish.
    let h = rt.submit(
        CountingTree { depth: 40, ticks: Arc::clone(&ticks) },
        SchedConfig::basic(4, 256),
        SchedulerKind::ReExpansion,
    );
    // Let it get going, then cancel.
    while ticks.load(Ordering::Relaxed) < 1000 {
        std::hint::spin_loop();
    }
    h.cancel();
    let res = h.wait(); // must return quickly, not after 2^40 tasks
    assert_eq!(res, Err(JobError::Cancelled));
    let after_cancel = ticks.load(Ordering::Relaxed);
    // The drain may consume already-materialised blocks but must not keep
    // expanding: give it a beat and check the counter stopped moving.
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(ticks.load(Ordering::Relaxed), after_cancel, "expansion continued after cancel+wait");
    assert_eq!(rt.stats().cancelled, 1);
}

#[test]
fn dropping_a_handle_mid_run_detaches_without_wedging() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 2, ..RuntimeConfig::default() });
    let ticks = Arc::new(AtomicU64::new(0));
    let h = rt.submit(
        CountingTree { depth: 18, ticks: Arc::clone(&ticks) },
        SchedConfig::basic(4, 64),
        SchedulerKind::ReExpansion,
    );
    drop(h); // detach: the run continues and must release its gate slot
    let deadline = Instant::now() + Duration::from_secs(60);
    while rt.stats().completed < 1 {
        assert!(Instant::now() < deadline, "detached job never completed");
        std::thread::yield_now();
    }
    assert_eq!(ticks.load(Ordering::Relaxed), (1u64 << 19) - 1, "detached job ran to completion");
    assert_eq!(rt.stats().inflight, 0, "gate slot leaked by dropped handle");
    // The runtime is still fully usable afterwards.
    let h = rt.submit(Tree(10), SchedConfig::basic(4, 64), SchedulerKind::ReExpansion);
    assert_eq!(h.wait(), Ok(1 << 10));
}

#[test]
fn dropping_a_cancelled_handle_is_also_clean() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 2, ..RuntimeConfig::default() });
    let ticks = Arc::new(AtomicU64::new(0));
    let h = rt.submit(
        CountingTree { depth: 40, ticks: Arc::clone(&ticks) },
        SchedConfig::basic(4, 256),
        SchedulerKind::ReExpansion,
    );
    while ticks.load(Ordering::Relaxed) < 100 {
        std::hint::spin_loop();
    }
    h.cancel();
    drop(h);
    let deadline = Instant::now() + Duration::from_secs(60);
    while rt.stats().cancelled < 1 {
        assert!(Instant::now() < deadline, "cancelled+dropped job never wound down");
        std::thread::yield_now();
    }
    assert_eq!(rt.stats().inflight, 0);
}

#[test]
fn backpressure_blocks_then_releases() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 1, max_inflight: 1, ..RuntimeConfig::default() });
    // Fill the single slot with a slow job, then submit another: the
    // second submit must block until the first completes.
    let slow = rt.submit(Tree(18), SchedConfig::basic(4, 64), SchedulerKind::ReExpansion);
    let fast = rt.submit(Tree(4), SchedConfig::basic(4, 64), SchedulerKind::ReExpansion);
    assert_eq!(fast.wait(), Ok(16));
    assert_eq!(slow.wait(), Ok(1 << 18));
    assert!(rt.stats().backpressure_waits >= 1, "the second submit should have hit the gate");
}

#[test]
fn try_submit_sheds_load_when_saturated() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 1, max_inflight: 1, ..RuntimeConfig::default() });
    let slow = rt.submit(Tree(20), SchedConfig::basic(4, 64), SchedulerKind::ReExpansion);
    // The slot is taken (the job may already be running, but it has not
    // completed): try_submit must bounce and return the program.
    match rt.try_submit(Tree(5), SchedConfig::basic(4, 64), SchedulerKind::ReExpansion) {
        Err(prog) => assert_eq!(prog.0, 5, "program handed back intact"),
        Ok(_) => panic!("try_submit admitted past a full gate"),
    }
    assert_eq!(slow.wait(), Ok(1 << 20));
    // Slot free again: admission works.
    let h = rt
        .try_submit(Tree(5), SchedConfig::basic(4, 64), SchedulerKind::ReExpansion)
        .unwrap_or_else(|_| panic!("gate should be free"));
    assert_eq!(h.wait(), Ok(32));
}

#[test]
fn bulk_results_arrive_in_input_order() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 8, ..RuntimeConfig::default() });
    // 100 items, each chunk's program counts leaves of depth = chunk len.
    let items: Vec<u32> = (0..100).collect();
    let bulk =
        rt.submit_bulk(items, SchedConfig::basic(4, 64), SchedulerKind::ReExpansion, |chunk: Vec<u32>| {
            Tree(chunk.len() as u32)
        });
    let chunks = bulk.chunks();
    assert!(chunks >= 2, "100 items on 2 workers must split");
    let results = bulk.wait();
    assert_eq!(results.len(), chunks);
    let total: u64 = results.into_iter().map(|r| r.expect("no chunk failed")).sum();
    // Each chunk of length L contributes 2^L leaves; chunk lengths sum to
    // 100, and every chunk is non-empty.
    assert!(total >= 100);
    assert_eq!(rt.stats().completed as usize, chunks);
}

#[test]
fn bulk_cancel_reaches_queued_chunks() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 1, max_inflight: 16, ..RuntimeConfig::default() });
    // Many deep chunks on one worker: cancel after the first ticks arrive;
    // later chunks must come back Cancelled without doing their full work.
    let ticks = Arc::new(AtomicU64::new(0));
    let t2 = Arc::clone(&ticks);
    let bulk = rt.submit_bulk(
        (0..64u32).collect::<Vec<_>>(),
        SchedConfig::basic(4, 64),
        SchedulerKind::ReExpansion,
        move |chunk: Vec<u32>| CountingTree { depth: 24 + chunk.len() as u32, ticks: Arc::clone(&t2) },
    );
    while ticks.load(Ordering::Relaxed) < 100 {
        std::hint::spin_loop();
    }
    bulk.cancel();
    let results = bulk.wait(); // must terminate long before 64 × 2^24 tasks
    assert!(results.contains(&Err(JobError::Cancelled)), "at least the queued chunks observe the cancel");
}

#[test]
fn panicking_program_is_contained() {
    struct Bomb;
    impl BlockProgram for Bomb {
        type Store = Vec<u32>;
        type Reducer = u64;
        fn arity(&self) -> usize {
            1
        }
        fn make_root(&self) -> Vec<u32> {
            vec![1]
        }
        fn make_reducer(&self) -> u64 {
            0
        }
        fn merge_reducers(&self, _: &mut u64, _: u64) {}
        fn expand(&self, _: &mut Vec<u32>, _: &mut BucketSet<Vec<u32>>, _: &mut u64) {
            panic!("bomb");
        }
    }
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 4, ..RuntimeConfig::default() });
    let h = rt.submit(Bomb, SchedConfig::basic(4, 64), SchedulerKind::Seq);
    assert_eq!(h.wait(), Err(JobError::Panicked));
    assert_eq!(rt.stats().panicked, 1);
    assert_eq!(rt.stats().inflight, 0, "panicked job released its slot");
    // Pool workers survived; the runtime still serves.
    let h = rt.submit(Tree(8), SchedConfig::basic(4, 64), SchedulerKind::ReExpansion);
    assert_eq!(h.wait(), Ok(256));
}

#[test]
fn closure_jobs_ride_the_same_gate() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 4, ..RuntimeConfig::default() });
    let mut handles: Vec<_> = (0..8u64).map(|i| rt.submit_fn(move || i * i)).collect();
    let sum: u64 = handles.drain(..).map(|h| h.wait().expect("closure job")).sum();
    assert_eq!(sum, (0..8u64).map(|i| i * i).sum());
    let stats = rt.stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.inflight, 0);
}

#[test]
fn panicking_bulk_chunk_builder_is_contained() {
    // Regression: a panic inside the user-supplied chunk-builder must be
    // routed to JobError::Panicked like any program panic — not escape the
    // catch, leak gate slots, and wedge BulkHandle::wait() forever.
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 8, ..RuntimeConfig::default() });
    let bulk = rt.submit_bulk(
        (0..32u32).collect::<Vec<_>>(),
        SchedConfig::basic(4, 64),
        SchedulerKind::ReExpansion,
        |_chunk: Vec<u32>| -> Tree { panic!("builder bomb") },
    );
    let results = bulk.wait(); // must complete, not hang
    assert!(!results.is_empty());
    assert!(results.iter().all(|r| *r == Err(JobError::Panicked)));
    let stats = rt.stats();
    assert_eq!(stats.inflight, 0, "panicked chunks must release their gate slots");
    assert_eq!(stats.panicked as usize, results.len());
    // Runtime still serves.
    let h = rt.submit(Tree(8), SchedConfig::basic(4, 64), SchedulerKind::ReExpansion);
    assert_eq!(h.wait(), Ok(256));
}

// ---------------------------------------------------------------------------
// The spec-source submission path: clients ship programs as text.
// ---------------------------------------------------------------------------

const FIB_SRC: &str = "spec fib(n) {
  base (n < 2) { reduce n; }
  else { spawn fib(n - 1); spawn fib(n - 2); }
}";

#[test]
fn spec_source_jobs_run_under_every_kind() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 8, ..RuntimeConfig::default() });
    for kind in SchedulerKind::ALL {
        let h = rt.submit_spec(FIB_SRC, vec![18], SchedConfig::restart(4, 64, 16), kind);
        assert_eq!(h.wait(), Ok(2584), "{kind:?}");
    }
    let stats = rt.stats();
    assert_eq!(stats.spec_compiles, 1, "compiled once");
    assert_eq!(stats.spec_cache_hits, 4, "four resubmissions hit the cache");
    assert_eq!(stats.rejected, 0);
}

#[test]
fn spec_foreach_submission_strip_mines_many_roots() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 3, max_inflight: 8, ..RuntimeConfig::default() });
    let calls: Vec<Vec<i64>> = (0..200).map(|i| vec![i % 10]).collect();
    // sum of fib(0..=9) cycled 20 times: (fib(11) - 1) * 20
    let h = rt.submit_spec_foreach(FIB_SRC, calls, SchedConfig::basic(8, 32), SchedulerKind::ReExpansion);
    assert_eq!(h.wait(), Ok(88 * 20));
}

#[test]
fn malformed_spec_source_is_rejected_not_panicked() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 4, ..RuntimeConfig::default() });
    let h = rt.submit_spec(
        "spec f(n) { base (n < 2) { reduce n; } else { spawn g(n - 1); } }",
        vec![5],
        SchedConfig::basic(4, 64),
        SchedulerKind::ReExpansion,
    );
    assert!(h.is_finished(), "rejection completes the handle immediately");
    match h.wait() {
        Err(JobError::Rejected(msg)) => {
            assert!(msg.contains("self-recursive"), "diagnostic names the violation: {msg}");
            assert!(msg.contains('^'), "diagnostic carries the caret line: {msg}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    let stats = rt.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.submitted, 0, "rejected specs never occupy a gate slot");
    assert_eq!(stats.inflight, 0);
    // The runtime still serves after a rejection.
    let h = rt.submit_spec(FIB_SRC, vec![10], SchedConfig::basic(4, 64), SchedulerKind::Seq);
    assert_eq!(h.wait(), Ok(55));
}

#[test]
fn wrong_root_arity_is_rejected_with_a_message() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 4, ..RuntimeConfig::default() });
    let h = rt.submit_spec(FIB_SRC, vec![10, 3], SchedConfig::basic(4, 64), SchedulerKind::Seq);
    match h.wait() {
        Err(JobError::Rejected(msg)) => {
            assert!(msg.contains("2 args") && msg.contains("1 params"), "{msg}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    assert_eq!(rt.stats().rejected, 1);
}

#[test]
fn spec_cache_is_shared_across_concurrent_clients() {
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 16, ..RuntimeConfig::default() });
    std::thread::scope(|s| {
        for _ in 0..4 {
            let rt = rt.clone();
            s.spawn(move || {
                for n in [8i64, 10, 12] {
                    let h = rt.submit_spec(FIB_SRC, vec![n], SchedConfig::basic(4, 32), SchedulerKind::Seq);
                    let want = [21, 55, 144][[8, 10, 12].iter().position(|&x| x == n).unwrap()];
                    assert_eq!(h.wait(), Ok(want));
                }
            });
        }
    });
    let stats = rt.stats();
    assert_eq!(stats.completed, 12);
    // The source may compile more than once under a racing first miss
    // (compilation happens outside the lock), but the cache must converge:
    // compiles + hits account for every submission.
    assert!(stats.spec_compiles >= 1);
    assert_eq!(stats.spec_compiles + stats.spec_cache_hits, 12);
}

#[test]
fn hostile_spec_source_cannot_kill_the_runtime() {
    // A pathological source (50k nested parens) must come back as a
    // Rejected handle — before the parser's nesting limits this aborted
    // the whole process with a stack overflow.
    let rt = Runtime::with_config(RuntimeConfig { threads: 2, max_inflight: 4, ..RuntimeConfig::default() });
    let hostile = format!(
        "spec f(n) {{ base (n < 2) {{ reduce {}n{}; }} else {{ spawn f(n - 1); }} }}",
        "(".repeat(50_000),
        ")".repeat(50_000)
    );
    let h = rt.submit_spec(&hostile, vec![5], SchedConfig::basic(4, 64), SchedulerKind::Seq);
    assert!(matches!(h.wait(), Err(JobError::Rejected(_))));
    // The runtime survives and still serves.
    let h = rt.submit_spec(FIB_SRC, vec![10], SchedConfig::basic(4, 64), SchedulerKind::Seq);
    assert_eq!(h.wait(), Ok(55));
}
