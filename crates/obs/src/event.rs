//! Fixed-size binary event model shared by every layer.

/// Number of distinct event kinds (array sizing for per-kind counters).
pub const KIND_COUNT: usize = 18;

/// Stored size of one event: seqlock word + ts + meta + arg.
pub const EVENT_BYTES: usize = 32;

/// What happened. Each variant is one fixed-size record; the meaning of
/// `arg0`/`arg` is per-kind (documented on the variant).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A job was pushed onto a worker's own deque. `arg0` = worker index.
    Spawn = 0,
    /// A steal sweep started (injector probe + victim scan). `arg0` = thief.
    StealAttempt = 1,
    /// A steal sweep took a job from a victim deque. `arg0` = thief,
    /// `arg` = victim worker index.
    StealHit = 2,
    /// A job was pushed into the pool's segmented injector.
    InjectorPush = 3,
    /// A job was popped from the injector by a worker. `arg0` = worker.
    InjectorPop = 4,
    /// A scheduler superstep boundary. `arg0` = level, `arg` = tasks
    /// executed in the superstep.
    Superstep = 5,
    /// The restart policy fired (`find_restart_full` found a full block
    /// below the frontier). `arg0` = level, `arg` = tasks in the block.
    Restart = 6,
    /// A preemptible job parked at a superstep boundary. `arg` = job id.
    Park = 7,
    /// A parked job resumed. `arg` = job id.
    Resume = 8,
    /// The admission scheduler requested preemption. `arg` = job id.
    Preempt = 9,
    /// A spec program was dispatched to an execution tier.
    /// `arg0` = lane width (1 = scalar, >1 = SIMD).
    SpecDispatch = 10,
    /// A spec tier began expanding one block. `arg0` = lane width.
    TierBegin = 11,
    /// The matching end. `arg0` = lane width, `arg` = tasks expanded.
    TierEnd = 12,
    /// The bulk API picked a chunk length. `arg0` = pending queue depth
    /// observed, `arg` = chosen chunk length.
    ChunkSize = 13,
    /// The admission scheduler started a job. `arg0` = tenant, `arg` = job id.
    Admit = 14,
    /// An admitted job finished. `arg0` = tenant, `arg` = job id.
    JobDone = 15,
    /// The adaptive grain controller grew its block budget after a quiet
    /// interval. `arg0` = worker index, `arg` = the new grain.
    GrainGrow = 16,
    /// The adaptive grain controller observed a steal-epoch advance and
    /// reset its grain to `Q`. `arg0` = worker index (the victim),
    /// `arg` = the number of epochs consumed since the last check.
    GrainReset = 17,
}

impl EventKind {
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::Spawn,
        EventKind::StealAttempt,
        EventKind::StealHit,
        EventKind::InjectorPush,
        EventKind::InjectorPop,
        EventKind::Superstep,
        EventKind::Restart,
        EventKind::Park,
        EventKind::Resume,
        EventKind::Preempt,
        EventKind::SpecDispatch,
        EventKind::TierBegin,
        EventKind::TierEnd,
        EventKind::ChunkSize,
        EventKind::Admit,
        EventKind::JobDone,
        EventKind::GrainGrow,
        EventKind::GrainReset,
    ];

    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }

    /// Stable snake_case name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Spawn => "spawn",
            EventKind::StealAttempt => "steal_attempt",
            EventKind::StealHit => "steal_hit",
            EventKind::InjectorPush => "injector_push",
            EventKind::InjectorPop => "injector_pop",
            EventKind::Superstep => "superstep",
            EventKind::Restart => "restart",
            EventKind::Park => "park",
            EventKind::Resume => "resume",
            EventKind::Preempt => "preempt",
            EventKind::SpecDispatch => "spec_dispatch",
            EventKind::TierBegin => "tier_begin",
            EventKind::TierEnd => "tier_end",
            EventKind::ChunkSize => "chunk_size",
            EventKind::Admit => "admit",
            EventKind::JobDone => "job_done",
            EventKind::GrainGrow => "grain_grow",
            EventKind::GrainReset => "grain_reset",
        }
    }
}

/// One drained event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Per-ring monotone event number (the recording order on its thread).
    pub seq: u64,
    /// Nanoseconds since the trace epoch (set when tracing is enabled).
    pub ts_ns: u64,
    pub kind: EventKind,
    pub arg0: u32,
    pub arg: u64,
}

/// All events drained from one thread's ring, oldest first.
#[derive(Clone, Debug, Default)]
pub struct Track {
    pub name: String,
    pub events: Vec<Event>,
}
