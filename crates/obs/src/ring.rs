//! Bounded single-producer event ring with racing-reader drains.
//!
//! Each worker thread owns one [`Ring`]. Recording is lock-free and
//! allocation-free: the producer overwrites the oldest slot when the ring
//! is full — it never blocks and never grows. A drain (any thread) walks
//! the undrained suffix and validates every slot with a per-slot seqlock,
//! so events overwritten *while* being read are detected and counted into
//! `dropped_events` instead of being returned torn.
//!
//! Slot protocol: slot `i` holds event number `n` (with `n % cap == i`).
//! The producer stamps `seq = 2n + 1` (busy), writes the payload words,
//! then stamps `seq = 2n + 2` (complete, Release). A reader accepts the
//! payload only if it observed `seq == 2n + 2` both before and after the
//! payload loads (Acquire / Acquire-fence). All words are relaxed atomics,
//! so a racing drain is always memory-safe; the seqlock only decides
//! whether the value is *meaningful*.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::event::{Event, EventKind, EVENT_BYTES, KIND_COUNT};

/// One event slot: seqlock word + three payload words.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    meta: AtomicU64,
    arg: AtomicU64,
}

#[inline]
fn pack_meta(kind: EventKind, arg0: u32) -> u64 {
    ((kind as u64) << 32) | arg0 as u64
}

#[inline]
fn unpack_meta(meta: u64) -> Option<(EventKind, u32)> {
    EventKind::from_u8((meta >> 32) as u8).map(|k| (k, meta as u32))
}

/// A bounded per-thread event ring. See the module docs for the protocol.
pub struct Ring {
    name: String,
    mask: u64,
    slots: Box<[Slot]>,
    /// Events ever recorded (monotone; the write cursor).
    head: AtomicU64,
    /// Events consumed (or skipped as lost) by drains.
    drained: AtomicU64,
    /// Events lost to overwrite before (or during) a drain.
    dropped: AtomicU64,
    /// Owner-bumped per-kind totals; exact even when the ring overflows.
    kind_counts: [AtomicU64; KIND_COUNT],
}

impl Ring {
    /// `capacity` is rounded up to a power of two, minimum 8.
    pub fn new(name: String, capacity: usize) -> Ring {
        let cap = capacity.max(8).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, Slot::default);
        Ring {
            name,
            mask: (cap - 1) as u64,
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            kind_counts: [const { AtomicU64::new(0) }; KIND_COUNT],
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events known lost: overwritten before a drain got to them, plus
    /// the currently-pending overflow a drain would discover right now.
    pub fn dropped(&self) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        let drained = self.drained.load(Ordering::Relaxed);
        let pending = head.saturating_sub(drained);
        let cap = self.slots.len() as u64;
        self.dropped.load(Ordering::Relaxed) + pending.saturating_sub(cap)
    }

    /// Exact per-kind totals (owner-bumped; unaffected by overflow).
    pub fn kind_count(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind as usize].load(Ordering::Relaxed)
    }

    /// Record one event. Owner thread only; never blocks, never allocates.
    #[inline]
    pub fn record(&self, ts_ns: u64, kind: EventKind, arg0: u32, arg: u64) {
        let n = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(n & self.mask) as usize];
        slot.seq.store(2 * n + 1, Ordering::Relaxed);
        // Order the busy stamp before the payload stores so a racing
        // reader that sees any new payload word must also see `seq` moved
        // off the old complete stamp when it re-validates.
        fence(Ordering::Release);
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.meta.store(pack_meta(kind, arg0), Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.seq.store(2 * n + 2, Ordering::Release);
        self.head.store(n + 1, Ordering::Release);
        let kc = &self.kind_counts[kind as usize];
        kc.store(kc.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Drain every event recorded since the previous drain, oldest first.
    /// Returns the events plus how many were lost to overwrite (already
    /// folded into [`Ring::dropped`]). Concurrent drains of one ring
    /// should be serialized by the caller (the registry does this); a
    /// racing producer is fine.
    pub fn drain(&self) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let mut cur = self.drained.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let mut lost = 0u64;
        if head.saturating_sub(cur) > cap {
            lost += head - cap - cur;
            cur = head - cap;
        }
        let mut out = Vec::with_capacity((head - cur) as usize);
        for n in cur..head {
            let slot = &self.slots[(n & self.mask) as usize];
            let want = 2 * n + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                lost += 1;
                continue;
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != want {
                lost += 1;
                continue;
            }
            match unpack_meta(meta) {
                Some((kind, arg0)) => out.push(Event { seq: n, ts_ns: ts, kind, arg0, arg }),
                None => lost += 1,
            }
        }
        self.drained.store(head, Ordering::Relaxed);
        self.dropped.fetch_add(lost, Ordering::Relaxed);
        (out, lost)
    }

    /// Bytes of event storage ever written (fixed-size events).
    pub fn bytes_recorded(&self) -> u64 {
        self.recorded() * EVENT_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(cap: usize) -> Ring {
        Ring::new("test".into(), cap)
    }

    #[test]
    fn records_and_drains_in_order() {
        let r = ring(64);
        for i in 0..10u64 {
            r.record(i, EventKind::Spawn, i as u32, i * 7);
        }
        let (evs, lost) = r.drain();
        assert_eq!(lost, 0);
        assert_eq!(evs.len(), 10);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.ts_ns, i as u64);
            assert_eq!(e.kind, EventKind::Spawn);
            assert_eq!(e.arg0, i as u32);
            assert_eq!(e.arg, i as u64 * 7);
        }
        // A second drain sees nothing new.
        let (evs, lost) = r.drain();
        assert!(evs.is_empty());
        assert_eq!(lost, 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts_them() {
        let r = ring(8); // power of two already
        let cap = r.capacity() as u64;
        let total = 3 * cap;
        for i in 0..total {
            r.record(i, EventKind::StealHit, 0, i);
        }
        assert_eq!(r.recorded(), total);
        // Before draining, the pending overflow is already visible.
        assert_eq!(r.dropped(), total - cap);
        let (evs, lost) = r.drain();
        assert_eq!(lost, total - cap);
        assert_eq!(evs.len(), cap as usize);
        // Survivors are exactly the newest `cap` events, in order.
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, total - cap + i as u64);
            assert_eq!(e.arg, total - cap + i as u64);
        }
        assert_eq!(r.dropped(), total - cap);
    }

    #[test]
    fn per_kind_totals_survive_overflow() {
        let r = ring(8);
        for i in 0..100u64 {
            let kind = if i % 3 == 0 { EventKind::Spawn } else { EventKind::StealAttempt };
            r.record(i, kind, 0, 0);
        }
        assert_eq!(r.kind_count(EventKind::Spawn), 34);
        assert_eq!(r.kind_count(EventKind::StealAttempt), 66);
    }

    #[test]
    fn racing_drain_never_sees_torn_future_events() {
        use std::sync::Arc;
        let r = Arc::new(ring(32));
        let w = Arc::clone(&r);
        let writer = std::thread::spawn(move || {
            for i in 0..200_000u64 {
                w.record(i, EventKind::InjectorPush, (i >> 32) as u32, i);
            }
        });
        let mut seen = 0u64;
        let mut lost = 0u64;
        while !writer.is_finished() {
            let (evs, l) = r.drain();
            for e in &evs {
                // Payload must be self-consistent: we always stored arg == ts.
                assert_eq!(e.arg, e.ts_ns, "torn event leaked through drain");
            }
            seen += evs.len() as u64;
            lost += l;
        }
        writer.join().unwrap();
        let (evs, l) = r.drain();
        seen += evs.len() as u64;
        lost += l;
        assert_eq!(seen + lost, 200_000);
    }
}
