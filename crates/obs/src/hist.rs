//! Log-bucketed histogram: bounded memory at millions of samples.
//!
//! Values are bucketed log-linearly — each power-of-two octave is split
//! into 16 linear sub-buckets — so quantile estimates carry at most
//! ~6% relative error while the whole histogram is a fixed ~8 KiB.
//! `min`/`max` are tracked exactly.

/// Sub-bucket resolution: each octave is split into `1 << SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS; // 16
/// Values below 2 * SUB index directly; above, log-linear indexing.
const LINEAR_LIMIT: u64 = (2 * SUB) as u64; // 32
const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB; // 960: covers all u64

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        ((shift as usize) << SUB_BITS) + (v >> shift) as usize
    }
}

/// Midpoint of the bucket's value range (exact for the linear region).
#[inline]
fn bucket_value(index: usize) -> u64 {
    if index < LINEAR_LIMIT as usize {
        index as u64
    } else {
        let shift = (index >> SUB_BITS) as u32 - 1;
        let top = ((index & (SUB - 1)) | SUB) as u64;
        let low = top << shift;
        low + (1u64 << shift) / 2
    }
}

/// A fixed-size log-bucketed histogram of `u64` samples (typically
/// nanoseconds). `record` is O(1) and allocation-free after construction.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram { counts: Box::new([0; BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (nearest-rank over buckets).
    /// Returns 0 on an empty histogram. Clamped to the exact observed
    /// `min`/`max`, so `quantile(0.0) == min` and `quantile(1.0) == max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..100_000u64 {
            let b = bucket_index(v);
            assert!(b == prev || b == prev + 1, "gap at v={v}: {prev} -> {b}");
            prev = b;
        }
        // The representative value always falls inside its own bucket.
        for v in [0, 1, 31, 32, 33, 1000, 1 << 20, u64::MAX / 3, u64::MAX] {
            let b = bucket_index(v);
            assert_eq!(bucket_index(bucket_value(b)), b, "v={v}");
        }
    }

    #[test]
    fn quantiles_track_exact_within_bucket_error() {
        let mut h = LogHistogram::new();
        let mut vals: Vec<u64> = (0..10_000).map(|i| (i * i) % 1_000_003).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for (q, idx) in [(0.5, 4999), (0.99, 9899)] {
            let exact = vals[idx as usize] as f64;
            let est = h.quantile(q) as f64;
            let err = (est - exact).abs() / exact.max(1.0);
            assert!(err < 0.07, "q={q}: exact={exact} est={est} err={err}");
        }
        assert_eq!(h.quantile(0.0), *vals.first().unwrap());
        assert_eq!(h.quantile(1.0), *vals.last().unwrap());
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..5000u64 {
            let v = i * 37 % 99_991;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
