//! Chrome trace-event JSON export (loads in Perfetto / `chrome://tracing`).
//!
//! Each ring becomes one track (`tid`) inside a single `taskblocks`
//! process. Tier-execution events become duration (`B`/`E`) pairs,
//! park/resume become async (`b`/`e`) spans keyed by job id — a job that
//! crosses park/resume shows up as one horizontal span across supersteps —
//! and everything else becomes thread-scoped instant events. The exporter
//! guarantees what the schema checker demands: per-track timestamps are
//! non-decreasing and every duration/async begin has a matching end
//! (spans still open when the trace stops are closed at the track's last
//! timestamp; ends whose begin was overwritten in the ring are dropped).

use crate::event::{Event, EventKind, Track};

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision, as Chrome expects.
fn us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1000, ts_ns % 1000)
}

const PID: u32 = 1;

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Writer {
        Writer { out: String::from("{\"traceEvents\":[\n"), first: true }
    }

    fn push(&mut self, line: String) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str(&line);
    }

    fn meta(&mut self, name: &str, tid: u32, value: &str) {
        self.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"{name}\",\"args\":{{\"name\":\"{}\"}}}}",
            escape(value)
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        self.out
    }
}

fn instant(w: &mut Writer, tid: u32, e: &Event) {
    w.push(format!(
        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\"cat\":\"sched\",\"args\":{{\"arg0\":{},\"arg\":{}}}}}",
        us(e.ts_ns),
        e.kind.name(),
        e.arg0,
        e.arg
    ));
}

fn duration(w: &mut Writer, tid: u32, ph: char, ts_ns: u64, name: &str, arg0: u32, arg: u64) {
    w.push(format!(
        "{{\"ph\":\"{ph}\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\"cat\":\"spec\",\"args\":{{\"arg0\":{arg0},\"arg\":{arg}}}}}",
        us(ts_ns),
        escape(name)
    ));
}

fn async_ev(w: &mut Writer, tid: u32, ph: char, ts_ns: u64, id: u64) {
    w.push(format!(
        "{{\"ph\":\"{ph}\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"name\":\"parked\",\"cat\":\"job\",\"id\":\"0x{id:x}\"}}",
        us(ts_ns)
    ));
}

/// Render drained tracks as a Chrome trace-event JSON document.
pub fn chrome_trace_json(tracks: &[Track]) -> String {
    let mut w = Writer::new();
    w.meta("process_name", 0, "taskblocks");
    for (i, t) in tracks.iter().enumerate() {
        w.meta("thread_name", i as u32 + 1, &t.name);
    }

    // Async park spans are matched by job id across all tracks: a job may
    // park on one worker and resume on another.
    let mut open_parks: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut trace_last_ts = 0u64;

    for (i, t) in tracks.iter().enumerate() {
        let tid = i as u32 + 1;
        let mut events = t.events.clone();
        events.sort_by_key(|e| (e.ts_ns, e.seq));
        let last_ts = events.last().map(|e| e.ts_ns).unwrap_or(0);
        trace_last_ts = trace_last_ts.max(last_ts);
        // Open B stack for this track (tier spans never cross threads).
        let mut open: Vec<(u64, String, u32)> = Vec::new();
        for e in &events {
            match e.kind {
                EventKind::TierBegin => {
                    let name = format!("expand q={}", e.arg0.max(1));
                    duration(&mut w, tid, 'B', e.ts_ns, &name, e.arg0, e.arg);
                    open.push((e.ts_ns, name, e.arg0));
                }
                EventKind::TierEnd => {
                    // An end whose begin was overwritten in the ring has
                    // nothing to close; drop it to keep pairs balanced.
                    if open.pop().is_some() {
                        duration(&mut w, tid, 'E', e.ts_ns, "", e.arg0, e.arg);
                    }
                }
                EventKind::Park => {
                    async_ev(&mut w, tid, 'b', e.ts_ns, e.arg);
                    open_parks.insert(e.arg, tid);
                    instant(&mut w, tid, e);
                }
                EventKind::Resume => {
                    if open_parks.remove(&e.arg).is_some() {
                        async_ev(&mut w, tid, 'e', e.ts_ns, e.arg);
                    }
                    instant(&mut w, tid, e);
                }
                _ => instant(&mut w, tid, e),
            }
        }
        // Close spans still open when the trace stopped.
        while open.pop().is_some() {
            duration(&mut w, tid, 'E', last_ts, "", 0, 0);
        }
    }
    for (id, tid) in open_parks {
        async_ev(&mut w, tid, 'e', trace_last_ts, id);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, ts_ns: u64, kind: EventKind, arg0: u32, arg: u64) -> Event {
        Event { seq, ts_ns, kind, arg0, arg }
    }

    #[test]
    fn emits_valid_shape_and_balances_spans() {
        let tracks = vec![Track {
            name: "tb-worker-0".into(),
            events: vec![
                ev(0, 100, EventKind::StealAttempt, 0, 0),
                ev(1, 200, EventKind::TierBegin, 4, 0),
                ev(2, 900, EventKind::TierEnd, 4, 64),
                ev(3, 1000, EventKind::Park, 0, 7),
                ev(4, 1500, EventKind::Resume, 0, 7),
                // Unclosed tier span: exporter must close it.
                ev(5, 1600, EventKind::TierBegin, 8, 0),
            ],
        }];
        let json = chrome_trace_json(&tracks);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 2);
        assert_eq!(b, e, "unbalanced duration events:\n{json}");
        let ab = json.matches("\"ph\":\"b\"").count();
        let ae = json.matches("\"ph\":\"e\"").count();
        assert_eq!(ab, ae, "unbalanced async events:\n{json}");
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("tb-worker-0"));
    }

    #[test]
    fn orphan_end_and_orphan_park_are_repaired() {
        let tracks = vec![Track {
            name: "w".into(),
            // End without begin (begin overwritten), park without resume.
            events: vec![ev(0, 10, EventKind::TierEnd, 4, 0), ev(1, 20, EventKind::Park, 0, 3)],
        }];
        let json = chrome_trace_json(&tracks);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 0);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 0);
        assert_eq!(json.matches("\"ph\":\"b\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"e\"").count(), 1);
    }
}
