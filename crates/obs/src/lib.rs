//! `tb-obs`: lock-free per-worker scheduler tracing and metrics.
//!
//! Every layer of the runtime records fixed-size binary events
//! ([`EventKind`]) into a per-thread bounded ring ([`ring::Ring`]).
//! Recording takes no locks and performs no allocation on the hot path
//! (the ring itself is allocated once, on the thread's first event), and
//! the whole API compiles to empty inline functions when the `trace`
//! cargo feature is off. With the feature on, tracing is still gated by a
//! single relaxed [`enabled`] load, default off — so instrumented code
//! pays one load + branch until someone calls [`set_enabled`]`(true)` or
//! sets `TB_TRACE=1`.
//!
//! Drains export two ways:
//! - [`drain_all`] + [`chrome::chrome_trace_json`]: a Chrome trace-event
//!   JSON document, one track per worker, loadable in Perfetto.
//! - [`metrics_snapshot`]: aggregate per-kind totals, drop counts and
//!   trace bytes, merged into the trajectory/service bench artifacts.

pub mod chrome;
pub mod event;
pub mod hist;
#[cfg(feature = "trace")]
pub mod ring;

pub use chrome::chrome_trace_json;
pub use event::{Event, EventKind, Track};
pub use hist::LogHistogram;

/// Per-ring totals reported in [`MetricsSnapshot`].
#[derive(Clone, Debug, Default)]
pub struct RingStat {
    pub name: String,
    pub recorded: u64,
    pub dropped: u64,
}

/// Aggregate tracing totals across every registered ring.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Whether recording is currently enabled (runtime flag).
    pub enabled: bool,
    /// Events ever recorded, summed over rings (exact, monotone).
    pub events_recorded: u64,
    /// Events lost to ring overwrite — committed drops plus the overflow
    /// a drain would discover right now. Nonzero means the trace is a
    /// truncated window, not a complete history.
    pub events_dropped: u64,
    /// Bytes of event storage ever written (`events_recorded * 32`).
    pub trace_bytes: u64,
    /// Exact per-kind totals (only kinds with nonzero counts).
    pub by_kind: Vec<(&'static str, u64)>,
    pub rings: Vec<RingStat>,
}

#[cfg(feature = "trace")]
mod imp {
    use std::cell::OnceCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    use crate::event::{EventKind, Track, KIND_COUNT};
    use crate::ring::Ring;
    use crate::{MetricsSnapshot, RingStat};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static RING_CAPACITY: AtomicUsize = AtomicUsize::new(8192);
    static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
    static ANON_THREADS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static TL_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
    }

    /// The event clock. `Instant::elapsed` costs ~40 ns per call on the
    /// measuring host — comparable to the rest of `record` combined — so
    /// on x86_64 timestamps come from `rdtsc` (a few ns), converted to
    /// nanoseconds with a rate calibrated once, at first enable, against
    /// a ~2 ms `Instant` window (fixed-point: ns-per-tick << 16).
    /// Invariant-TSC hardware keeps the counter synchronized across
    /// cores; if a reading does drift on exotic hardware, the exporter's
    /// per-track (ts, seq) sort still produces a valid document — the
    /// clock's accuracy affects span *lengths*, never safety. Other
    /// arches keep the `Instant` clock.
    #[cfg(target_arch = "x86_64")]
    mod clock {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::Instant;

        static BASE: AtomicU64 = AtomicU64::new(0);
        /// Nanoseconds per TSC tick in 16.16 fixed point; 0 = uncalibrated.
        static MULT: AtomicU64 = AtomicU64::new(0);

        #[inline]
        fn tsc() -> u64 {
            // SAFETY: rdtsc has no memory effects and is available on
            // every x86_64 (it predates the 64-bit ISA).
            unsafe { core::arch::x86_64::_rdtsc() }
        }

        /// Calibrate the tick rate (first call only; ~2 ms, off the hot
        /// path — it runs inside `set_enabled(true)`).
        pub fn calibrate() {
            if MULT.load(Ordering::Acquire) != 0 {
                return;
            }
            let t0 = Instant::now();
            let c0 = tsc();
            while t0.elapsed().as_micros() < 2_000 {
                std::hint::spin_loop();
            }
            let ticks = tsc().wrapping_sub(c0).max(1);
            let mult = (t0.elapsed().as_nanos() << 16) / ticks as u128;
            BASE.store(c0, Ordering::Relaxed);
            MULT.store((mult as u64).max(1), Ordering::Release);
        }

        /// Nanoseconds since calibration (0 before first enable).
        #[inline]
        pub fn now_ns() -> u64 {
            let mult = MULT.load(Ordering::Relaxed);
            if mult == 0 {
                return 0;
            }
            let dt = tsc().wrapping_sub(BASE.load(Ordering::Relaxed));
            ((dt as u128 * mult as u128) >> 16) as u64
        }
    }

    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub fn set_enabled(on: bool) {
        if on {
            EPOCH.get_or_init(Instant::now);
            #[cfg(target_arch = "x86_64")]
            clock::calibrate();
        }
        ENABLED.store(on, Ordering::Relaxed);
    }

    pub fn init_from_env() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            if matches!(std::env::var("TB_TRACE").as_deref(), Ok("1") | Ok("true") | Ok("on")) {
                set_enabled(true);
            }
        });
    }

    /// Nanoseconds since the trace epoch (first enable).
    #[inline]
    pub fn now_ns() -> u64 {
        #[cfg(target_arch = "x86_64")]
        {
            clock::now_ns()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
        }
    }

    /// Set the per-thread ring capacity (events; rounded up to a power of
    /// two). Applies to rings created after the call.
    pub fn set_ring_capacity(events: usize) {
        RING_CAPACITY.store(events.max(8), Ordering::Relaxed);
    }

    fn new_thread_ring() -> Arc<Ring> {
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{}", ANON_THREADS.fetch_add(1, Ordering::Relaxed)));
        let ring = Arc::new(Ring::new(name, RING_CAPACITY.load(Ordering::Relaxed)));
        REGISTRY.lock().unwrap().push(Arc::clone(&ring));
        ring
    }

    /// Record one event on the calling thread's ring. One relaxed load +
    /// branch when tracing is off; lock-free and allocation-free when on
    /// (the thread's ring is created and registered on its first event —
    /// the only time this path ever takes a lock or allocates).
    #[inline]
    pub fn record(kind: EventKind, arg0: u32, arg: u64) {
        if !enabled() {
            return;
        }
        let ts = now_ns();
        // try_with: a thread recording during TLS teardown just drops the
        // event rather than panicking.
        let _ = TL_RING.try_with(|cell| {
            cell.get_or_init(new_thread_ring).record(ts, kind, arg0, arg);
        });
    }

    /// Drain every registered ring: all events recorded since the last
    /// drain, one [`Track`] per thread (threads that recorded nothing
    /// since are omitted). Rings of exited threads stay registered so
    /// their tail is never lost.
    pub fn drain_all() -> Vec<Track> {
        let rings = REGISTRY.lock().unwrap();
        let mut out = Vec::new();
        for ring in rings.iter() {
            let (events, _lost) = ring.drain();
            if !events.is_empty() {
                out.push(Track { name: ring.name().to_owned(), events });
            }
        }
        out
    }

    pub fn metrics_snapshot() -> MetricsSnapshot {
        let rings = REGISTRY.lock().unwrap();
        let mut snap = MetricsSnapshot { enabled: enabled(), ..Default::default() };
        let mut by_kind = [0u64; KIND_COUNT];
        for ring in rings.iter() {
            let recorded = ring.recorded();
            let dropped = ring.dropped();
            snap.events_recorded += recorded;
            snap.events_dropped += dropped;
            snap.trace_bytes += ring.bytes_recorded();
            for kind in EventKind::ALL {
                by_kind[kind as usize] += ring.kind_count(kind);
            }
            snap.rings.push(RingStat { name: ring.name().to_owned(), recorded, dropped });
        }
        for kind in EventKind::ALL {
            let n = by_kind[kind as usize];
            if n > 0 {
                snap.by_kind.push((kind.name(), n));
            }
        }
        snap
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    //! Feature-off stubs: every entry point is an empty inline function,
    //! so instrumented call sites compile to nothing at all.
    use crate::event::{EventKind, Track};
    use crate::MetricsSnapshot;

    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    pub fn set_enabled(_on: bool) {}

    pub fn init_from_env() {}

    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    pub fn set_ring_capacity(_events: usize) {}

    #[inline(always)]
    pub fn record(_kind: EventKind, _arg0: u32, _arg: u64) {}

    pub fn drain_all() -> Vec<Track> {
        Vec::new()
    }

    pub fn metrics_snapshot() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }
}

pub use imp::{
    drain_all, enabled, init_from_env, metrics_snapshot, now_ns, record, set_enabled, set_ring_capacity,
};

/// Convenience for service stats: `(events_dropped, trace_bytes)`.
pub fn trace_totals() -> (u64, u64) {
    let snap = metrics_snapshot();
    (snap.events_dropped, snap.trace_bytes)
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    // One test fn: the registry and enable flag are process-global, so
    // phases must not interleave with each other.
    #[test]
    fn thread_local_rings_register_and_drain() {
        set_enabled(true);
        let _ = drain_all(); // discard anything earlier tests recorded

        record(EventKind::Spawn, 1, 10);
        record(EventKind::StealHit, 1, 0);
        let h = std::thread::Builder::new()
            .name("obs-test-worker".into())
            .spawn(|| {
                for i in 0..5 {
                    record(EventKind::InjectorPush, 0, i);
                }
            })
            .unwrap();
        h.join().unwrap();

        let tracks = drain_all();
        let worker = tracks.iter().find(|t| t.name == "obs-test-worker").expect("worker track");
        assert_eq!(worker.events.len(), 5);
        assert!(worker.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let mine: u64 = tracks
            .iter()
            .filter(|t| t.name != "obs-test-worker")
            .map(|t| {
                t.events.iter().filter(|e| matches!(e.kind, EventKind::Spawn | EventKind::StealHit)).count()
                    as u64
            })
            .sum();
        assert_eq!(mine, 2);

        let snap = metrics_snapshot();
        assert!(snap.enabled);
        assert!(snap.events_recorded >= 7);
        assert_eq!(snap.trace_bytes, snap.events_recorded * 32);
        assert!(snap.by_kind.iter().any(|&(n, c)| n == "injector_push" && c >= 5));

        // Disabled: recording is a no-op, drains return nothing new.
        set_enabled(false);
        record(EventKind::Spawn, 0, 0);
        assert!(drain_all().is_empty());
    }
}
