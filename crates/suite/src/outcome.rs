//! Benchmark results in a form the harness can compare across variants.

/// The answer a benchmark computes, comparable across execution variants.
///
/// Integer reductions (solution counts, node counts, best values) must match
/// exactly under every scheduler; floating-point reductions (forces,
/// distances) are compared with a relative tolerance because blocked and
/// parallel execution reassociate the sums — exactly as in the paper's C
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// An exact integer result.
    Exact(u64),
    /// A floating-point result, compared with relative tolerance.
    Approx(f64),
}

impl Outcome {
    /// Do two outcomes agree (`rel_tol` for the `Approx` case)?
    pub fn matches(&self, other: &Outcome, rel_tol: f64) -> bool {
        match (self, other) {
            (Outcome::Exact(a), Outcome::Exact(b)) => a == b,
            (Outcome::Approx(a), Outcome::Approx(b)) => {
                if a == b {
                    return true;
                }
                let scale = a.abs().max(b.abs()).max(1e-30);
                (a - b).abs() / scale <= rel_tol
            }
            _ => false,
        }
    }

    /// Render for tables.
    pub fn display(&self) -> String {
        match self {
            Outcome::Exact(v) => v.to_string(),
            Outcome::Approx(v) => format!("{v:.6e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_exact() {
        assert!(Outcome::Exact(5).matches(&Outcome::Exact(5), 0.0));
        assert!(!Outcome::Exact(5).matches(&Outcome::Exact(6), 0.0));
    }

    #[test]
    fn approx_uses_relative_tolerance() {
        let a = Outcome::Approx(1000.0);
        let b = Outcome::Approx(1000.0005);
        assert!(a.matches(&b, 1e-6));
        assert!(!a.matches(&Outcome::Approx(1001.0), 1e-6));
    }

    #[test]
    fn kinds_never_match() {
        assert!(!Outcome::Exact(1).matches(&Outcome::Approx(1.0), 1.0));
    }

    #[test]
    fn zero_approx_is_handled() {
        assert!(Outcome::Approx(0.0).matches(&Outcome::Approx(0.0), 1e-9));
    }
}
