//! The uniform benchmark interface the experiment harness drives.

use std::time::Instant;

use tb_core::prelude::*;
use tb_runtime::ThreadPool;

use crate::outcome::Outcome;

/// Input-size presets. `Small` (the default) keeps every benchmark's tree
/// shape while shrinking it to laptop scale; `Paper` is the exact input of
/// Table 1; `Tiny` is for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test sized.
    Tiny,
    /// Default harness scale (seconds per run).
    Small,
    /// The paper's exact inputs (minutes per run).
    Paper,
}

/// Table 2's implementation tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Blocked execution over array-of-structs task storage.
    Block,
    /// Blocked execution over struct-of-arrays columns.
    Soa,
    /// SoA plus explicit vector kernels / streaming compaction.
    Simd,
}

impl Tier {
    /// Short name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Block => "block",
            Tier::Soa => "soa",
            Tier::Simd => "simd",
        }
    }
}

/// One run's result: the computed answer plus scheduler statistics
/// (`stats.wall` is the run's wall-clock time).
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The benchmark's answer.
    pub outcome: Outcome,
    /// Machine-model counters and wall time.
    pub stats: ExecStats,
}

/// A benchmark that can be executed under every variant of the framework.
pub trait Benchmark: Sync + Send {
    /// Table 1 name.
    fn name(&self) -> &'static str;

    /// The paper's vector width for this benchmark (Table 1 caption).
    fn q(&self) -> usize;

    /// Parallelism nesting, for documentation ("task", "data-in-task", …).
    fn nesting(&self) -> &'static str;

    /// Relative tolerance when comparing outcomes across variants
    /// (0 for integer reductions).
    fn tolerance(&self) -> f64 {
        0.0
    }

    /// Does the `Simd` tier use explicit lane kernels (vs falling back to
    /// the auto-vectorized SoA kernel)?
    fn simd_is_explicit(&self) -> bool {
        false
    }

    /// The plain sequential recursion (`Ts`).
    fn serial(&self) -> RunSummary;

    /// Per-task forks on the work-stealing pool (the input Cilk program).
    fn cilk(&self, pool: &ThreadPool) -> RunSummary;

    /// Single-core blocked execution under `cfg`'s policy and thresholds.
    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary;

    /// Multicore blocked execution on `pool` under the selected scheduler
    /// implementation (`kind` must be one of the parallel kinds).
    fn blocked_par(&self, pool: &ThreadPool, cfg: SchedConfig, kind: SchedulerKind, tier: Tier)
        -> RunSummary;
}

/// All eleven benchmarks at `scale`, in Table 1 order.
pub fn all_benchmarks(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(crate::knapsack::Knapsack::new(scale)),
        Box::new(crate::fib::Fib::new(scale)),
        Box::new(crate::parentheses::Parentheses::new(scale)),
        Box::new(crate::nqueens::NQueens::new(scale)),
        Box::new(crate::graphcol::GraphCol::new(scale)),
        Box::new(crate::uts::Uts::new(scale)),
        Box::new(crate::binomial::Binomial::new(scale)),
        Box::new(crate::minmax::MinMax::new(scale)),
        Box::new(crate::barneshut::BarnesHut::new(scale)),
        Box::new(crate::pointcorr::PointCorr::new(scale)),
        Box::new(crate::knn::Knn::new(scale)),
    ]
}

/// Look up one benchmark by its Table 1 name.
pub fn benchmark_by_name(name: &str, scale: Scale) -> Option<Box<dyn Benchmark>> {
    all_benchmarks(scale).into_iter().find(|b| b.name() == name)
}

// ---- helpers for the per-benchmark impls -------------------------------

/// Run `prog` single-core under `cfg`'s policy and summarise.
pub(crate) fn seq_summary<P: BlockProgram>(
    prog: &P,
    cfg: SchedConfig,
    to_outcome: impl FnOnce(P::Reducer) -> Outcome,
) -> RunSummary {
    let out = run_policy(prog, cfg, None);
    RunSummary { outcome: to_outcome(out.reducer), stats: out.stats }
}

/// Run `prog` under the selected parallel scheduler and summarise.
pub(crate) fn par_summary<P: BlockProgram>(
    prog: &P,
    pool: &ThreadPool,
    cfg: SchedConfig,
    kind: SchedulerKind,
    to_outcome: impl FnOnce(P::Reducer) -> Outcome,
) -> RunSummary {
    // Hard assert: harness binaries run --release, and silently recording a
    // sequential run under a parallel label would corrupt every table.
    assert!(kind.is_parallel(), "blocked_par drives the multicore schedulers, got {kind:?}");
    let out = run_scheduler(kind, prog, cfg, Some(pool));
    RunSummary { outcome: to_outcome(out.reducer), stats: out.stats }
}

/// Time a plain serial run that reports `(outcome, tasks_executed)`.
pub(crate) fn serial_summary(q: usize, f: impl FnOnce() -> (Outcome, u64)) -> RunSummary {
    let start = Instant::now();
    let (outcome, tasks) = f();
    let mut stats = ExecStats::new(q);
    stats.tasks_executed = tasks;
    stats.wall = start.elapsed();
    RunSummary { outcome, stats }
}

/// Time a per-task Cilk-style run on `pool`.
pub(crate) fn cilk_summary(
    q: usize,
    pool: &ThreadPool,
    f: impl FnOnce(&ThreadPool) -> Outcome,
) -> RunSummary {
    let before = pool.metrics();
    let start = Instant::now();
    let outcome = f(pool);
    let mut stats = ExecStats::new(q);
    stats.wall = start.elapsed();
    let d = pool.metrics().since(&before);
    stats.steal_attempts = d.steal_attempts;
    stats.steals = d.steals;
    RunSummary { outcome, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eleven_benchmarks_in_table1_order() {
        let benches = all_benchmarks(Scale::Tiny);
        let names: Vec<_> = benches.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            [
                "knapsack",
                "fib",
                "parentheses",
                "nqueens",
                "graphcol",
                "uts",
                "binomial",
                "minmax",
                "barneshut",
                "pointcorr",
                "knn"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark_by_name("fib", Scale::Tiny).is_some());
        assert!(benchmark_by_name("nope", Scale::Tiny).is_none());
    }

    #[test]
    fn qs_match_table1_caption() {
        for b in all_benchmarks(Scale::Tiny) {
            let expected = match b.name() {
                "knapsack" => 8,
                "uts" | "barneshut" | "pointcorr" | "knn" => 4,
                _ => 16,
            };
            assert_eq!(b.q(), expected, "{}", b.name());
        }
    }
}
