//! `binomial` — binomial coefficient by Pascal recursion.
//!
//! Paper input: `C(36,13)` — 36 levels, 4.62 G tasks (2·C(36,13)−1), `char`
//! data. `C(n,k) = C(n-1,k-1) + C(n-1,k)`, base `k == 0 || k == n` → 1.
//! A task is the pair `(n, k)`: two `u8` columns in SoA form.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};
use tb_simd::{compact_append, Lanes, SoaVec2};

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::outcome::Outcome;

const Q: usize = 16;

/// The binomial benchmark `C(n, k)`.
pub struct Binomial {
    /// Row of Pascal's triangle.
    pub n: u8,
    /// Column.
    pub k: u8,
}

impl Binomial {
    /// Presets: tiny C(16,6), small C(27,10), paper C(36,13).
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => Binomial { n: 16, k: 6 },
            Scale::Small => Binomial { n: 27, k: 10 },
            Scale::Paper => Binomial { n: 36, k: 13 },
        }
    }
}

/// `C(n,k)` and the number of recursive calls.
pub fn binomial_serial(n: u8, k: u8) -> (u64, u64) {
    if k == 0 || k == n {
        (1, 1)
    } else {
        let (a, ta) = binomial_serial(n - 1, k - 1);
        let (b, tb) = binomial_serial(n - 1, k);
        (a + b, ta + tb + 1)
    }
}

fn binomial_cilk(ctx: &WorkerCtx<'_>, n: u8, k: u8) -> u64 {
    if k == 0 || k == n {
        return 1;
    }
    let (a, b) = ctx.join(move |c| binomial_cilk(c, n - 1, k - 1), move |c| binomial_cilk(c, n - 1, k));
    a + b
}

/// AoS blocked program: `Vec<(n, k)>`.
struct BinAos {
    n: u8,
    k: u8,
}

impl BlockProgram for BinAos {
    type Store = Vec<(u8, u8)>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Self::Store {
        vec![(self.n, self.k)]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        for (n, k) in block.drain(..) {
            if k == 0 || k == n {
                *red += 1;
            } else {
                out.bucket(0).push((n - 1, k - 1));
                out.bucket(1).push((n - 1, k));
            }
        }
    }
}

/// SoA blocked program: column of `n`, column of `k`; `simd` switches the
/// 16-lane kernel on.
struct BinSoa {
    n: u8,
    k: u8,
    simd: bool,
}

impl BlockProgram for BinSoa {
    type Store = SoaVec2<u8, u8>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Self::Store {
        let mut s = SoaVec2::new();
        s.push(self.n, self.k);
        s
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        let len = block.num_tasks();
        let (ns, ks) = (&block.c0, &block.c1);
        let mut i = 0;
        if self.simd {
            let zero = Lanes::<u8, 16>::splat(0);
            while i + 16 <= len {
                let n = Lanes::<u8, 16>::from_slice(&ns[i..]);
                let k = Lanes::<u8, 16>::from_slice(&ks[i..]);
                let base = k.eq_lanes(zero).or(k.eq_lanes(n));
                *red += base.count() as u64;
                let inductive = base.not();
                let n1 = n.map(|x| x.wrapping_sub(1));
                let k1 = k.map(|x| x.wrapping_sub(1));
                let left = out.bucket(0);
                compact_append(&mut left.c0, &n1, &inductive);
                compact_append(&mut left.c1, &k1, &inductive);
                let right = out.bucket(1);
                compact_append(&mut right.c0, &n1, &inductive);
                compact_append(&mut right.c1, &k, &inductive);
                i += 16;
            }
        }
        for j in i..len {
            let (n, k) = (ns[j], ks[j]);
            if k == 0 || k == n {
                *red += 1;
            } else {
                out.bucket(0).push(n - 1, k - 1);
                out.bucket(1).push(n - 1, k);
            }
        }
        block.clear();
    }
}

impl Benchmark for Binomial {
    fn name(&self) -> &'static str {
        "binomial"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "task"
    }

    fn simd_is_explicit(&self) -> bool {
        true
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (v, tasks) = binomial_serial(self.n, self.k);
            (Outcome::Exact(v), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        let (n, k) = (self.n, self.k);
        cilk_summary(Q, pool, |p| Outcome::Exact(p.install(|ctx| binomial_cilk(ctx, n, k))))
    }

    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary {
        match tier {
            Tier::Block => seq_summary(&BinAos { n: self.n, k: self.k }, cfg, Outcome::Exact),
            Tier::Soa => seq_summary(&BinSoa { n: self.n, k: self.k, simd: false }, cfg, Outcome::Exact),
            Tier::Simd => seq_summary(&BinSoa { n: self.n, k: self.k, simd: true }, cfg, Outcome::Exact),
        }
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: Tier,
    ) -> RunSummary {
        match tier {
            Tier::Block => par_summary(&BinAos { n: self.n, k: self.k }, pool, cfg, kind, Outcome::Exact),
            Tier::Soa => {
                par_summary(&BinSoa { n: self.n, k: self.k, simd: false }, pool, cfg, kind, Outcome::Exact)
            }
            Tier::Simd => {
                par_summary(&BinSoa { n: self.n, k: self.k, simd: true }, pool, cfg, kind, Outcome::Exact)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_reference() {
        assert_eq!(binomial_serial(10, 3).0, 120);
        assert_eq!(binomial_serial(16, 6).0, 8008);
        // #tasks = 2*C(n,k) - 1
        assert_eq!(binomial_serial(10, 3).1, 2 * 120 - 1);
    }

    #[test]
    fn all_variants_agree() {
        let b = Binomial::new(Scale::Tiny);
        let want = b.serial().outcome;
        let pool = ThreadPool::new(2);
        assert_eq!(b.cilk(&pool).outcome, want);
        for tier in [Tier::Block, Tier::Soa, Tier::Simd] {
            let cfg = SchedConfig::restart(Q, 128, 32);
            assert_eq!(b.blocked_seq(cfg, tier).outcome, want, "{tier:?}");
            assert_eq!(b.blocked_par(&pool, cfg, SchedulerKind::RestartSimplified, tier).outcome, want);
        }
    }

    #[test]
    fn simd_matches_scalar_task_counts() {
        let b = Binomial { n: 14, k: 5 };
        let cfg = SchedConfig::reexpansion(Q, 64);
        let scalar = b.blocked_seq(cfg, Tier::Soa);
        let simd = b.blocked_seq(cfg, Tier::Simd);
        assert_eq!(scalar.outcome, simd.outcome);
        assert_eq!(scalar.stats.tasks_executed, simd.stats.tasks_executed);
    }
}
