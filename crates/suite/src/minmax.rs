//! `minmax` — game-tree search on a 4×4 board.
//!
//! Paper input: 4×4 board, 13 levels, 2.42 G tasks. The computation tree is
//! the move tree of 4×4 tic-tac-toe, depth-capped (the paper's 13 levels =
//! root + 12 plies), with subtrees cut off at won positions — highly
//! irregular fan-out (16 at the root, shrinking each ply).
//!
//! The framework's reductions must be associative and commutative, so —
//! like the original benchmark's reduction-based formulation — the program
//! computes the *outcome tally* of the game tree (wins for either player
//! and depth-capped/drawn leaves, combined into one checksum). The
//! traversal, and hence everything the scheduler sees, is identical to an
//! unpruned minimax sweep.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};
use tb_simd::SoaVec2;

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::outcome::Outcome;

const Q: usize = 16;

/// A square board small enough for `u16` bitboards.
#[derive(Debug, Clone)]
pub struct Board {
    /// Number of cells (9 or 16).
    pub cells: u8,
    /// Winning-line masks.
    pub lines: Vec<u16>,
    /// Maximum plies explored (the depth cap).
    pub cap: u8,
}

impl Board {
    /// An `n`×`n` board (n = 3 or 4) with a ply cap.
    pub fn square(n: u8, cap: u8) -> Self {
        assert!(n == 3 || n == 4, "u16 bitboards support 3x3 and 4x4");
        let mut lines = Vec::new();
        let idx = |r: u8, c: u8| r * n + c;
        for r in 0..n {
            lines.push((0..n).fold(0u16, |m, c| m | 1 << idx(r, c)));
            lines.push((0..n).fold(0u16, |m, c| m | 1 << idx(c, r)));
        }
        lines.push((0..n).fold(0u16, |m, i| m | 1 << idx(i, i)));
        lines.push((0..n).fold(0u16, |m, i| m | 1 << idx(i, n - 1 - i)));
        Board { cells: n * n, lines, cap }
    }

    /// Does `mask` contain a full line?
    // Subset test, not membership: clippy's `contains` suggestion would
    // change semantics.
    #[expect(clippy::manual_contains)]
    #[inline]
    pub fn wins(&self, mask: u16) -> bool {
        self.lines.iter().any(|&l| mask & l == l)
    }
}

/// Outcome tally, merged by summation and reported as a checksum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Leaves where the first player has a line.
    pub x_wins: u64,
    /// Leaves where the second player has a line.
    pub o_wins: u64,
    /// Full-board or depth-capped leaves.
    pub draws: u64,
}

impl Tally {
    fn add(&mut self, o: Tally) {
        self.x_wins += o.x_wins;
        self.o_wins += o.o_wins;
        self.draws += o.draws;
    }

    /// Collision-resistant combination of the three counters.
    pub fn checksum(&self) -> u64 {
        self.x_wins
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.o_wins.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(self.draws.wrapping_mul(0x1656_67B1_9E37_79F9))
    }
}

/// The minmax benchmark.
pub struct MinMax {
    board: Board,
}

impl MinMax {
    /// Presets: tiny 3×3 capped at 6 plies; small 4×4 capped at 6; paper
    /// 4×4 capped at 12 (13 levels).
    pub fn new(scale: Scale) -> Self {
        MinMax {
            board: match scale {
                Scale::Tiny => Board::square(3, 6),
                Scale::Small => Board::square(4, 6),
                Scale::Paper => Board::square(4, 12),
            },
        }
    }

    /// The board definition.
    pub fn board(&self) -> &Board {
        &self.board
    }
}

type Task = (u16, u16); // (x bitboard, o bitboard)

#[inline]
fn expand_one(b: &Board, t: Task, red: &mut Tally, mut spawn: impl FnMut(usize, Task)) {
    let (x, o) = t;
    let occupied = x | o;
    let plies = occupied.count_ones() as u8;
    if b.wins(x) {
        red.x_wins += 1;
        return;
    }
    if b.wins(o) {
        red.o_wins += 1;
        return;
    }
    if plies == b.cap || plies == b.cells {
        red.draws += 1;
        return;
    }
    let x_to_move = plies.is_multiple_of(2);
    let mut site = 0usize;
    for cell in 0..b.cells {
        let bit = 1u16 << cell;
        if occupied & bit == 0 {
            let child = if x_to_move { (x | bit, o) } else { (x, o | bit) };
            spawn(site, child);
            site += 1;
        }
    }
}

/// Serial tally and recursive-call count.
pub fn minmax_serial(b: &Board) -> (Tally, u64) {
    fn rec(b: &Board, t: Task) -> (Tally, u64) {
        let mut tally = Tally::default();
        let mut tasks = 1;
        let mut children = Vec::new();
        expand_one(b, t, &mut tally, |_, c| children.push(c));
        for c in children {
            let (ct, cn) = rec(b, c);
            tally.add(ct);
            tasks += cn;
        }
        (tally, tasks)
    }
    rec(b, (0, 0))
}

fn minmax_cilk(b: &Board, ctx: &WorkerCtx<'_>, t: Task) -> Tally {
    let mut tally = Tally::default();
    let mut children = Vec::new();
    expand_one(b, t, &mut tally, |_, c| children.push(c));
    fn over(b: &Board, ctx: &WorkerCtx<'_>, mut kids: Vec<Task>) -> Tally {
        match kids.len() {
            0 => Tally::default(),
            1 => minmax_cilk(b, ctx, kids[0]),
            _ => {
                let right = kids.split_off(kids.len() / 2);
                let (mut a, c) = ctx.join(move |c| over(b, c, kids), move |c| over(b, c, right));
                a.add(c);
                a
            }
        }
    }
    tally.add(over(b, ctx, children));
    tally
}

struct MmAos<'b> {
    b: &'b Board,
}

impl BlockProgram for MmAos<'_> {
    type Store = Vec<Task>;
    type Reducer = Tally;

    fn arity(&self) -> usize {
        self.b.cells as usize
    }

    fn make_root(&self) -> Self::Store {
        vec![(0, 0)]
    }

    fn make_reducer(&self) -> Tally {
        Tally::default()
    }

    fn merge_reducers(&self, a: &mut Tally, b: Tally) {
        a.add(b);
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut Tally) {
        for t in block.drain(..) {
            expand_one(self.b, t, red, |site, child| out.bucket(site).push(child));
        }
    }
}

struct MmSoa<'b> {
    b: &'b Board,
}

impl BlockProgram for MmSoa<'_> {
    type Store = SoaVec2<u16, u16>;
    type Reducer = Tally;

    fn arity(&self) -> usize {
        self.b.cells as usize
    }

    fn make_root(&self) -> Self::Store {
        let mut s = SoaVec2::new();
        s.push(0, 0);
        s
    }

    fn make_reducer(&self) -> Tally {
        Tally::default()
    }

    fn merge_reducers(&self, a: &mut Tally, b: Tally) {
        a.add(b);
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut Tally) {
        for i in 0..block.num_tasks() {
            let t = block.get(i);
            expand_one(self.b, t, red, |site, (x, o)| out.bucket(site).push(x, o));
        }
        block.clear();
    }
}

impl Benchmark for MinMax {
    fn name(&self) -> &'static str {
        "minmax"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "task"
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (t, tasks) = minmax_serial(&self.board);
            (Outcome::Exact(t.checksum()), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        cilk_summary(Q, pool, |p| {
            Outcome::Exact(p.install(|ctx| minmax_cilk(&self.board, ctx, (0, 0))).checksum())
        })
    }

    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary {
        let to = |t: Tally| Outcome::Exact(t.checksum());
        match tier {
            Tier::Block => seq_summary(&MmAos { b: &self.board }, cfg, to),
            Tier::Soa | Tier::Simd => seq_summary(&MmSoa { b: &self.board }, cfg, to),
        }
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: Tier,
    ) -> RunSummary {
        let to = |t: Tally| Outcome::Exact(t.checksum());
        match tier {
            Tier::Block => par_summary(&MmAos { b: &self.board }, pool, cfg, kind, to),
            Tier::Soa | Tier::Simd => par_summary(&MmSoa { b: &self.board }, pool, cfg, kind, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_3x3_game_tree_counts_are_classic() {
        // Full 3x3 tic-tac-toe: 255168 games, X wins 131184, O wins 77904,
        // draws 46080.
        let b = Board::square(3, 9);
        let (t, _) = minmax_serial(&b);
        assert_eq!(t.x_wins, 131_184);
        assert_eq!(t.o_wins, 77_904);
        assert_eq!(t.draws, 46_080);
    }

    #[test]
    fn depth_cap_limits_levels() {
        let mm = MinMax::new(Scale::Tiny);
        let run = mm.blocked_seq(SchedConfig::restart(Q, 128, 32), Tier::Block);
        assert!(run.stats.max_level <= 6);
    }

    #[test]
    fn all_variants_agree() {
        let mm = MinMax::new(Scale::Tiny);
        let want = mm.serial().outcome;
        let pool = ThreadPool::new(2);
        assert_eq!(mm.cilk(&pool).outcome, want);
        for tier in [Tier::Block, Tier::Soa] {
            let cfg = SchedConfig::reexpansion(Q, 256);
            assert_eq!(mm.blocked_seq(cfg, tier).outcome, want);
            for kind in
                [SchedulerKind::ReExpansion, SchedulerKind::RestartSimplified, SchedulerKind::RestartIdeal]
            {
                assert_eq!(mm.blocked_par(&pool, cfg, kind, tier).outcome, want, "{kind:?}");
            }
        }
    }

    #[test]
    fn wins_detection() {
        let b = Board::square(4, 12);
        assert!(b.wins(0b1111)); // top row
        assert!(!b.wins(0b0111));
        // main diagonal of 4x4: cells 0,5,10,15
        assert!(b.wins(1 | 1 << 5 | 1 << 10 | 1 << 15));
    }
}
