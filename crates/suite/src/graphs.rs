//! Random-graph substrate for the graph-colouring benchmark.

/// An undirected graph on at most 64 vertices, adjacency stored as one
/// bitmask per vertex (vertex `u` ∈ `adj[v]` ⇔ edge `{u,v}`).
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Adjacency bitmask per vertex.
    pub adj: Vec<u64>,
}

impl Graph {
    /// Erdős–Rényi-style random graph: each edge present with probability
    /// `p_num / p_den`, from a fixed deterministic stream.
    pub fn random(n: usize, p_num: u64, p_den: u64, seed: u64) -> Self {
        assert!(n <= 64, "bitmask adjacency supports at most 64 vertices");
        let mut adj = vec![0u64; n];
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for v in 0..n {
            for u in 0..v {
                if next() % p_den < p_num {
                    adj[v] |= 1 << u;
                    adj[u] |= 1 << v;
                }
            }
        }
        Graph { n, adj }
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.adj.iter().map(|m| m.count_ones() as usize).sum::<usize>() / 2
    }

    /// Is `{u, v}` an edge?
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[v] & (1 << u) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_symmetric() {
        let a = Graph::random(20, 1, 4, 42);
        let b = Graph::random(20, 1, 4, 42);
        assert_eq!(a.adj, b.adj);
        for v in 0..20 {
            assert_eq!(a.adj[v] & (1 << v), 0, "no self loops");
            for u in 0..20 {
                assert_eq!(a.has_edge(u, v), a.has_edge(v, u));
            }
        }
    }

    #[test]
    fn density_tracks_probability() {
        let g = Graph::random(40, 1, 2, 7);
        let max_edges = 40 * 39 / 2;
        let frac = g.edges() as f64 / max_edges as f64;
        assert!((0.35..0.65).contains(&frac), "edge fraction {frac}");
    }
}
