//! Deterministic splittable RNG for the UTS benchmark.
//!
//! The original UTS uses a SHA-1-based splittable random stream so that a
//! node's subtree shape is a pure function of the node id. For scheduling
//! behaviour only the *statistics* of the stream matter, so we substitute
//! SplitMix64 finalisation — far cheaper, same well-mixed independence of
//! child streams (documented in DESIGN.md §4).

/// SplitMix64 finaliser: a high-quality 64-bit mixing function.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The random state of child `i` of a node with state `parent`.
#[inline]
pub fn child_state(parent: u64, i: u64) -> u64 {
    mix(parent ^ (i.wrapping_add(1)).wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// A uniform draw in `[0, 1)` from a node state.
#[inline]
pub fn uniform(state: u64) -> f64 {
    (mix(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_is_deterministic() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(1), mix(2));
    }

    #[test]
    fn children_have_distinct_streams() {
        let p = mix(7);
        let kids: Vec<u64> = (0..8).map(|i| child_state(p, i)).collect();
        for i in 0..8 {
            for j in 0..i {
                assert_ne!(kids[i], kids[j]);
            }
        }
    }

    #[test]
    fn uniform_is_in_unit_interval_and_roughly_uniform() {
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let u = uniform(i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
