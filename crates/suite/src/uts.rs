//! `uts` — Unbalanced Tree Search, binomial variant.
//!
//! Paper input: a binomial UTS tree — 228 levels, 19.9 M tasks, `int` data,
//! 4-wide vectors. In a binomial UTS tree every non-root node has `m`
//! children with probability `q` and none otherwise (`mq < 1`), driven by a
//! splittable per-node random stream; the root has `b0` children so the
//! tree doesn't die immediately. Subtree sizes are wildly unpredictable,
//! which is the whole point: this is the classic stress test for dynamic
//! load balancing. The reduction is the node count.
//!
//! The original UTS derives node streams from SHA-1; we substitute
//! SplitMix64 (see [`crate::uts_rng`] and DESIGN.md §4) with the same
//! structural parameters.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::outcome::Outcome;
use crate::uts_rng::{child_state, uniform};

const Q: usize = 4;

/// The UTS benchmark parameters.
pub struct Uts {
    /// Root branching factor.
    pub b0: usize,
    /// Non-root branching factor (children come in all-or-nothing bunches).
    pub m: usize,
    /// Probability (×2⁻⁶⁴ fixed point avoided: stored as f64) that a node
    /// has children.
    pub q: f64,
    /// Root random seed.
    pub seed: u64,
}

impl Uts {
    /// Presets chosen so `m·q` stays near the paper's regime (deep spindly
    /// trees with huge subtree variance): tiny ~1 K nodes, small a few
    /// hundred K, paper tens of M.
    /// The binomial process is heavy-tailed, so total size is a seed
    /// lottery around `b0 / (1 - m·q)`; these seeds were chosen to land in
    /// the documented ranges (tiny ≈ 100 nodes / depth 13, small ≈ 220 K /
    /// depth 320, paper ≈ 1.4 M / depth 1050 — smaller than the paper's
    /// 19.9 M but with the same deep-spindly shape; see EXPERIMENTS.md).
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => Uts { b0: 16, m: 4, q: 0.24, seed: 19 },
            Scale::Small => Uts { b0: 256, m: 8, q: 0.1245, seed: 19 },
            Scale::Paper => Uts { b0: 2000, m: 8, q: 0.124985, seed: 777 },
        }
    }

    fn has_children(&self, state: u64) -> bool {
        uniform(state) < self.q
    }
}

/// Node count and recursive-call count (equal for UTS: every node is a task).
pub fn uts_serial(u: &Uts) -> (u64, u64) {
    fn rec(u: &Uts, state: u64) -> u64 {
        let mut nodes = 1;
        if u.has_children(state) {
            for i in 0..u.m {
                nodes += rec(u, child_state(state, i as u64));
            }
        }
        nodes
    }
    let mut nodes = 0;
    for i in 0..u.b0 {
        nodes += rec(u, child_state(u.seed, i as u64));
    }
    (nodes, nodes)
}

fn uts_cilk(u: &Uts, ctx: &WorkerCtx<'_>, state: u64) -> u64 {
    let mut nodes = 1;
    if u.has_children(state) {
        fn over(u: &Uts, ctx: &WorkerCtx<'_>, state: u64, lo: usize, hi: usize) -> u64 {
            if hi - lo == 1 {
                return uts_cilk(u, ctx, child_state(state, lo as u64));
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = ctx.join(move |c| over(u, c, state, lo, mid), move |c| over(u, c, state, mid, hi));
            a + b
        }
        nodes += over(u, ctx, state, 0, u.m);
    }
    nodes
}

/// Blocked UTS. A task is just the node's random state; the level-synchrony
/// of blocks means every task in a block sits at the same tree depth, as
/// required. AoS and SoA coincide (single `u64` column).
struct UtsProg<'u> {
    u: &'u Uts,
}

impl BlockProgram for UtsProg<'_> {
    type Store = Vec<u64>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        self.u.m
    }

    fn make_root(&self) -> Self::Store {
        // The virtual root's children are the level-0 tasks (the outer
        // data-parallel-ish seeding of the search).
        (0..self.u.b0).map(|i| child_state(self.u.seed, i as u64)).collect()
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        for state in block.drain(..) {
            *red += 1;
            if self.u.has_children(state) {
                for i in 0..self.u.m {
                    out.bucket(i).push(child_state(state, i as u64));
                }
            }
        }
    }
}

impl Benchmark for Uts {
    fn name(&self) -> &'static str {
        "uts"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "task"
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (v, tasks) = uts_serial(self);
            (Outcome::Exact(v), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        cilk_summary(Q, pool, |p| {
            Outcome::Exact(p.install(|ctx| {
                fn roots(u: &Uts, ctx: &WorkerCtx<'_>, lo: usize, hi: usize) -> u64 {
                    if hi - lo == 1 {
                        return uts_cilk(u, ctx, child_state(u.seed, lo as u64));
                    }
                    let mid = lo + (hi - lo) / 2;
                    let (a, b) = ctx.join(move |c| roots(u, c, lo, mid), move |c| roots(u, c, mid, hi));
                    a + b
                }
                roots(self, ctx, 0, self.b0)
            }))
        })
    }

    fn blocked_seq(&self, cfg: SchedConfig, _tier: Tier) -> RunSummary {
        seq_summary(&UtsProg { u: self }, cfg, Outcome::Exact)
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        _tier: Tier,
    ) -> RunSummary {
        par_summary(&UtsProg { u: self }, pool, cfg, kind, Outcome::Exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_deterministic() {
        let u = Uts::new(Scale::Tiny);
        let a = uts_serial(&u);
        let b = uts_serial(&u);
        assert_eq!(a, b);
        assert!(a.0 >= u.b0 as u64, "at least the root's children exist");
    }

    #[test]
    fn all_variants_agree() {
        let u = Uts::new(Scale::Tiny);
        let want = u.serial().outcome;
        let pool = ThreadPool::new(2);
        assert_eq!(u.cilk(&pool).outcome, want);
        for cfg in [SchedConfig::reexpansion(Q, 128), SchedConfig::restart(Q, 128, 16)] {
            assert_eq!(u.blocked_seq(cfg, Tier::Block).outcome, want);
            for kind in
                [SchedulerKind::ReExpansion, SchedulerKind::RestartSimplified, SchedulerKind::RestartIdeal]
            {
                assert_eq!(u.blocked_par(&pool, cfg, kind, Tier::Block).outcome, want, "{kind:?}");
            }
        }
    }

    #[test]
    fn tree_is_deep_relative_to_size() {
        // The binomial regime produces depth far beyond log2(n) — that is
        // what distinguishes uts in Figure 4/5.
        let u = Uts::new(Scale::Tiny);
        let run = u.blocked_seq(SchedConfig::restart(Q, 64, 16), Tier::Block);
        let n = run.stats.tasks_executed as f64;
        assert!(
            run.stats.max_level as f64 > n.log2(),
            "depth {} vs log2(n) {}",
            run.stats.max_level,
            n.log2()
        );
    }
}
