//! Suite workloads as *submittable jobs*: owned, `'static`
//! [`BlockProgram`]s for the `tb-service` front-end.
//!
//! The [`Benchmark`](crate::Benchmark) trait drives measured runs through
//! borrowed program values (`UtsProg<'u>` and friends) — fine for a
//! harness that blocks on each run, useless for a service that ships the
//! program to a worker and returns a handle. This module provides the same
//! computations as self-contained values (parameters copied in, no
//! borrows), each with a `expected()` answer so service tests and the
//! throughput benchmark can verify every reduction they get back.

use tb_core::prelude::*;

use crate::bench::Scale;
use crate::uts_rng::{child_state, uniform};

/// Blocked `fib(n)`: tasks are remaining arguments, reducer sums base cases.
pub struct FibJob {
    /// Argument to `fib`.
    pub n: u8,
}

impl FibJob {
    /// Preset input per scale (matches [`crate::fib::Fib::new`]).
    pub fn new(scale: Scale) -> Self {
        FibJob { n: crate::fib::Fib::new(scale).n }
    }

    /// The exact answer, for verifying service results.
    pub fn expected(&self) -> u64 {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..self.n {
            let next = a + b;
            a = b;
            b = next;
        }
        a
    }
}

impl BlockProgram for FibJob {
    type Store = Vec<u8>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Vec<u8> {
        vec![self.n]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Vec<u8>, out: &mut BucketSet<Vec<u8>>, red: &mut u64) {
        for n in block.drain(..) {
            if n < 2 {
                *red += u64::from(n);
            } else {
                out.bucket(0).push(n - 1);
                out.bucket(1).push(n - 2);
            }
        }
    }
}

/// Blocked binomial UTS (node count): parameters copied from
/// [`crate::uts::Uts`], tasks are node random-states.
pub struct UtsJob {
    /// Root branching factor.
    pub b0: usize,
    /// Non-root branching factor.
    pub m: usize,
    /// Probability a node has children.
    pub q: f64,
    /// Root random seed.
    pub seed: u64,
}

impl UtsJob {
    /// Preset parameters per scale (matches [`crate::uts::Uts::new`]).
    pub fn new(scale: Scale) -> Self {
        let u = crate::uts::Uts::new(scale);
        UtsJob { b0: u.b0, m: u.m, q: u.q, seed: u.seed }
    }

    /// The exact node count (serial recount; cheap at tiny/small scales).
    pub fn expected(&self) -> u64 {
        crate::uts::uts_serial(&crate::uts::Uts { b0: self.b0, m: self.m, q: self.q, seed: self.seed }).0
    }
}

impl BlockProgram for UtsJob {
    type Store = Vec<u64>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        self.m
    }

    fn make_root(&self) -> Vec<u64> {
        (0..self.b0).map(|i| child_state(self.seed, i as u64)).collect()
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Vec<u64>, out: &mut BucketSet<Vec<u64>>, red: &mut u64) {
        for state in block.drain(..) {
            *red += 1;
            if uniform(state) < self.q {
                for i in 0..self.m {
                    out.bucket(i).push(child_state(state, i as u64));
                }
            }
        }
    }
}

/// Blocked n-queens (solution count): tasks are partial placements.
pub struct NQueensJob {
    /// Board size.
    pub n: u8,
}

impl NQueensJob {
    /// Preset board per scale (matches [`crate::nqueens::NQueens::new`]).
    pub fn new(scale: Scale) -> Self {
        NQueensJob { n: crate::nqueens::NQueens::new(scale).n }
    }

    /// The exact solution count (serial recount).
    pub fn expected(&self) -> u64 {
        crate::nqueens::nqueens_serial(self.n).0
    }
}

impl BlockProgram for NQueensJob {
    type Store = Vec<(u8, u16, u32, u32)>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        self.n as usize
    }

    fn make_root(&self) -> Self::Store {
        vec![(0, 0, 0, 0)]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        let full = (1u16 << self.n) - 1;
        for t in block.drain(..) {
            crate::nqueens::expand_one(full, self.n, t, red, |site, child| {
                out.bucket(site).push(child);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_runtime::ThreadPool;

    #[test]
    fn jobs_match_their_expected_answers_under_every_kind() {
        let pool = ThreadPool::new(2);
        let fib = FibJob::new(Scale::Tiny);
        let uts = UtsJob::new(Scale::Tiny);
        let nq = NQueensJob::new(Scale::Tiny);
        for kind in SchedulerKind::ALL {
            let cfg = SchedConfig::restart(4, 64, 16);
            assert_eq!(run_scheduler(kind, &fib, cfg, Some(&pool)).reducer, fib.expected(), "{kind:?}");
            assert_eq!(run_scheduler(kind, &uts, cfg, Some(&pool)).reducer, uts.expected(), "{kind:?}");
            assert_eq!(run_scheduler(kind, &nq, cfg, Some(&pool)).reducer, nq.expected(), "{kind:?}");
        }
    }

    #[test]
    fn job_presets_mirror_the_benchmark_presets() {
        assert_eq!(FibJob::new(Scale::Tiny).n, crate::fib::Fib::new(Scale::Tiny).n);
        let u = crate::uts::Uts::new(Scale::Small);
        let j = UtsJob::new(Scale::Small);
        assert_eq!((j.b0, j.m, j.seed), (u.b0, u.m, u.seed));
        assert_eq!(NQueensJob::new(Scale::Paper).n, crate::nqueens::NQueens::new(Scale::Paper).n);
    }

    #[test]
    fn fib_expected_closed_form() {
        assert_eq!(FibJob { n: 10 }.expected(), 55);
        assert_eq!(FibJob { n: 20 }.expected(), 6765);
        assert_eq!(FibJob { n: 0 }.expected(), 0);
    }
}
