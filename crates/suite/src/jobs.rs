//! Suite workloads as *submittable jobs*: owned, `'static`
//! [`BlockProgram`]s for the `tb-service` front-end.
//!
//! The [`Benchmark`](crate::Benchmark) trait drives measured runs through
//! borrowed program values (`UtsProg<'u>` and friends) — fine for a
//! harness that blocks on each run, useless for a service that ships the
//! program to a worker and returns a handle. This module provides the same
//! computations as self-contained values (parameters copied in, no
//! borrows), each with a `expected()` answer so service tests and the
//! throughput benchmark can verify every reduction they get back.

use tb_core::prelude::*;

use crate::bench::Scale;
use crate::uts_rng::{child_state, uniform};

/// Blocked `fib(n)`: tasks are remaining arguments, reducer sums base cases.
pub struct FibJob {
    /// Argument to `fib`.
    pub n: u8,
}

impl FibJob {
    /// Preset input per scale (matches [`crate::fib::Fib::new`]).
    pub fn new(scale: Scale) -> Self {
        FibJob { n: crate::fib::Fib::new(scale).n }
    }

    /// The exact answer, for verifying service results.
    pub fn expected(&self) -> u64 {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..self.n {
            let next = a + b;
            a = b;
            b = next;
        }
        a
    }
}

impl BlockProgram for FibJob {
    type Store = Vec<u8>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Vec<u8> {
        vec![self.n]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Vec<u8>, out: &mut BucketSet<Vec<u8>>, red: &mut u64) {
        for n in block.drain(..) {
            if n < 2 {
                *red += u64::from(n);
            } else {
                out.bucket(0).push(n - 1);
                out.bucket(1).push(n - 2);
            }
        }
    }
}

/// Blocked binomial UTS (node count): parameters copied from
/// [`crate::uts::Uts`], tasks are node random-states.
pub struct UtsJob {
    /// Root branching factor.
    pub b0: usize,
    /// Non-root branching factor.
    pub m: usize,
    /// Probability a node has children.
    pub q: f64,
    /// Root random seed.
    pub seed: u64,
}

impl UtsJob {
    /// Preset parameters per scale (matches [`crate::uts::Uts::new`]).
    pub fn new(scale: Scale) -> Self {
        let u = crate::uts::Uts::new(scale);
        UtsJob { b0: u.b0, m: u.m, q: u.q, seed: u.seed }
    }

    /// The exact node count (serial recount; cheap at tiny/small scales).
    pub fn expected(&self) -> u64 {
        crate::uts::uts_serial(&crate::uts::Uts { b0: self.b0, m: self.m, q: self.q, seed: self.seed }).0
    }
}

impl BlockProgram for UtsJob {
    type Store = Vec<u64>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        self.m
    }

    fn make_root(&self) -> Vec<u64> {
        (0..self.b0).map(|i| child_state(self.seed, i as u64)).collect()
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Vec<u64>, out: &mut BucketSet<Vec<u64>>, red: &mut u64) {
        for state in block.drain(..) {
            *red += 1;
            if uniform(state) < self.q {
                for i in 0..self.m {
                    out.bucket(i).push(child_state(state, i as u64));
                }
            }
        }
    }
}

/// Blocked n-queens (solution count): tasks are partial placements.
pub struct NQueensJob {
    /// Board size.
    pub n: u8,
}

impl NQueensJob {
    /// Preset board per scale (matches [`crate::nqueens::NQueens::new`]).
    pub fn new(scale: Scale) -> Self {
        NQueensJob { n: crate::nqueens::NQueens::new(scale).n }
    }

    /// The exact solution count (serial recount).
    pub fn expected(&self) -> u64 {
        crate::nqueens::nqueens_serial(self.n).0
    }
}

impl BlockProgram for NQueensJob {
    type Store = Vec<(u8, u16, u32, u32)>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        self.n as usize
    }

    fn make_root(&self) -> Self::Store {
        vec![(0, 0, 0, 0)]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        let full = (1u16 << self.n) - 1;
        for t in block.drain(..) {
            crate::nqueens::expand_one(full, self.n, t, red, |site, child| {
                out.bucket(site).push(child);
            });
        }
    }
}

/// A compiled spec-language program as a submittable job: `tb-spec` source
/// lowered through [`tb_spec::compile()`] to a native-speed
/// [`BlockProgram`], with a known answer for service verification.
///
/// Inputs are scaled down relative to the native Table 1 presets because
/// `expected()` recounts through the reference interpreter — the point of
/// these jobs is exercising the compiled pipeline under service load, not
/// paper-scale measurement (that is the `spec` trajectory family's job).
///
/// Each job runs the scalar [`tb_spec::CompiledSpec`] tier by default;
/// [`SpecJob::vectorized`] rebuilds it over the `Q`-lane masked
/// [`tb_spec::VectorSpec`] tier (same lowered code, bit-identical
/// results), so service tests and the throughput benchmark can drive both
/// execution tiers through one job type.
pub struct SpecJob {
    prog: SpecProg,
    name: &'static str,
    spec: tb_spec::RecursiveSpec,
    calls: Vec<Vec<i64>>,
}

/// Which execution tier a [`SpecJob`] expands through.
enum SpecProg {
    Scalar(tb_spec::CompiledSpec),
    Simd(tb_spec::VectorSpec),
}

impl SpecJob {
    fn build(name: &'static str, spec: tb_spec::RecursiveSpec, calls: Vec<Vec<i64>>) -> Self {
        let prog =
            tb_spec::CompiledSpec::with_data_parallel(&spec, calls.clone()).expect("example specs validate");
        SpecJob { prog: SpecProg::Scalar(prog), name, spec, calls }
    }

    /// The same computation re-tiered onto the masked vector interpreter
    /// at the host's detected lane width (`-simd` name suffix). The
    /// lowered instruction stream is shared, not recompiled.
    pub fn vectorized(self) -> Self {
        let code = match &self.prog {
            SpecProg::Scalar(p) => std::sync::Arc::clone(p.code()),
            SpecProg::Simd(p) => std::sync::Arc::clone(p.code()),
        };
        let prog = SpecProg::Simd(tb_spec::VectorSpec::from_code(code, &self.calls));
        SpecJob { prog, name: simd_name(self.name), spec: self.spec, calls: self.calls }
    }

    /// Compiled `fib(n)` at a per-scale input.
    pub fn fib(scale: Scale) -> Self {
        let n = match scale {
            Scale::Tiny => 16,
            Scale::Small => 24,
            Scale::Paper => 30,
        };
        Self::build("spec-fib", tb_spec::examples::fib_spec(), vec![vec![n]])
    }

    /// Compiled Pascal-recursion `binomial(n, k)`.
    pub fn binomial(scale: Scale) -> Self {
        let (n, k) = match scale {
            Scale::Tiny => (12, 5),
            Scale::Small => (20, 9),
            Scale::Paper => (26, 11),
        };
        Self::build("spec-binomial", tb_spec::examples::binomial_spec(), vec![vec![n, k]])
    }

    /// Compiled balanced-parentheses counter (guarded spawns).
    pub fn parentheses(scale: Scale) -> Self {
        let n = match scale {
            Scale::Tiny => 6,
            Scale::Small => 10,
            Scale::Paper => 13,
        };
        Self::build("spec-paren", tb_spec::examples::parentheses_spec(n), vec![vec![0, 0]])
    }

    /// Compiled ternary tree sum over a §5.2 `foreach`: many level-0
    /// roots, strip-mined by the engines.
    pub fn treesum(scale: Scale) -> Self {
        let (depth, roots) = match scale {
            Scale::Tiny => (4, 8),
            Scale::Small => (7, 32),
            Scale::Paper => (9, 128),
        };
        Self::build(
            "spec-treesum",
            tb_spec::examples::treesum_spec(3),
            tb_spec::examples::treesum_roots(depth, roots),
        )
    }

    /// All four spec jobs at `scale` (harness iteration).
    pub fn all(scale: Scale) -> Vec<SpecJob> {
        vec![Self::fib(scale), Self::binomial(scale), Self::parentheses(scale), Self::treesum(scale)]
    }

    /// All four spec jobs re-tiered onto the vector interpreter
    /// ([`SpecJob::vectorized`]).
    pub fn all_simd(scale: Scale) -> Vec<SpecJob> {
        Self::all(scale).into_iter().map(SpecJob::vectorized).collect()
    }

    /// Job name (`spec-fib`, `spec-binomial`, …; vectorized jobs carry a
    /// `-simd` suffix).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The lane width this job expands at (1 for the scalar tier).
    pub fn lane_width(&self) -> usize {
        match &self.prog {
            SpecProg::Scalar(_) => 1,
            SpecProg::Simd(p) => p.lane_width(),
        }
    }

    /// The spec source-of-truth answer (reference-interpreter recount).
    pub fn expected(&self) -> i64 {
        tb_spec::interp::interpret_data_parallel(&self.spec, &self.calls)
    }
}

/// `spec-x` → `spec-x-simd` (static names so [`SpecJob::name`] stays
/// allocation-free; unknown names keep their scalar label).
fn simd_name(name: &'static str) -> &'static str {
    match name {
        "spec-fib" => "spec-fib-simd",
        "spec-binomial" => "spec-binomial-simd",
        "spec-paren" => "spec-paren-simd",
        "spec-treesum" => "spec-treesum-simd",
        other => other,
    }
}

impl BlockProgram for SpecJob {
    type Store = tb_spec::compile::ArgBlock;
    type Reducer = i64;

    fn arity(&self) -> usize {
        match &self.prog {
            SpecProg::Scalar(p) => p.arity(),
            SpecProg::Simd(p) => p.arity(),
        }
    }

    fn make_root(&self) -> Self::Store {
        match &self.prog {
            SpecProg::Scalar(p) => p.make_root(),
            SpecProg::Simd(p) => p.make_root(),
        }
    }

    fn make_reducer(&self) -> i64 {
        0
    }

    fn merge_reducers(&self, a: &mut i64, b: i64) {
        tb_core::merge_sum(a, b);
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut i64) {
        match &self.prog {
            SpecProg::Scalar(p) => p.expand(block, out, red),
            SpecProg::Simd(p) => p.expand(block, out, red),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_runtime::ThreadPool;

    #[test]
    fn jobs_match_their_expected_answers_under_every_kind() {
        let pool = ThreadPool::new(2);
        let fib = FibJob::new(Scale::Tiny);
        let uts = UtsJob::new(Scale::Tiny);
        let nq = NQueensJob::new(Scale::Tiny);
        for kind in SchedulerKind::ALL {
            let cfg = SchedConfig::restart(4, 64, 16);
            assert_eq!(run_scheduler(kind, &fib, cfg, Some(&pool)).reducer, fib.expected(), "{kind:?}");
            assert_eq!(run_scheduler(kind, &uts, cfg, Some(&pool)).reducer, uts.expected(), "{kind:?}");
            assert_eq!(run_scheduler(kind, &nq, cfg, Some(&pool)).reducer, nq.expected(), "{kind:?}");
        }
    }

    #[test]
    fn job_presets_mirror_the_benchmark_presets() {
        assert_eq!(FibJob::new(Scale::Tiny).n, crate::fib::Fib::new(Scale::Tiny).n);
        let u = crate::uts::Uts::new(Scale::Small);
        let j = UtsJob::new(Scale::Small);
        assert_eq!((j.b0, j.m, j.seed), (u.b0, u.m, u.seed));
        assert_eq!(NQueensJob::new(Scale::Paper).n, crate::nqueens::NQueens::new(Scale::Paper).n);
    }

    #[test]
    fn spec_jobs_match_their_expected_answers_under_every_kind() {
        let pool = ThreadPool::new(2);
        for job in SpecJob::all(Scale::Tiny) {
            let want = job.expected();
            for kind in SchedulerKind::ALL {
                let cfg = SchedConfig::restart(4, 64, 16);
                let got = run_scheduler(kind, &job, cfg, Some(&pool)).reducer;
                assert_eq!(got, want, "{} under {kind:?}", job.name());
            }
        }
    }

    #[test]
    fn vectorized_spec_jobs_match_their_expected_answers_under_every_kind() {
        let pool = ThreadPool::new(2);
        for job in SpecJob::all_simd(Scale::Tiny) {
            assert!(job.name().ends_with("-simd"), "{}", job.name());
            assert!(job.lane_width() >= 1);
            let want = job.expected();
            for kind in SchedulerKind::ALL {
                let cfg = SchedConfig::restart(4, 64, 16);
                let got = run_scheduler(kind, &job, cfg, Some(&pool)).reducer;
                assert_eq!(got, want, "{} under {kind:?}", job.name());
            }
        }
    }

    #[test]
    fn vectorized_jobs_share_the_scalar_lowering_and_tree() {
        // Re-tiering must not recompile or change the computation: same
        // task counts under the sequential scheduler, same answer.
        let scalar = SpecJob::parentheses(Scale::Tiny);
        let cfg = SchedConfig::restart(4, 32, 8);
        let a = run_scheduler(SchedulerKind::Seq, &scalar, cfg, None);
        let vector = scalar.vectorized();
        let b = run_scheduler(SchedulerKind::Seq, &vector, cfg, None);
        assert_eq!(a.reducer, b.reducer);
        assert_eq!(a.stats.tasks_executed, b.stats.tasks_executed);
        assert_eq!(vector.name(), "spec-paren-simd");
    }

    #[test]
    fn spec_job_answers_cross_check() {
        assert_eq!(SpecJob::fib(Scale::Tiny).expected(), 987); // fib(16)
        assert_eq!(SpecJob::binomial(Scale::Tiny).expected(), 792); // C(12,5)
        assert_eq!(SpecJob::parentheses(Scale::Tiny).expected(), 132); // Catalan(6)
        let t = SpecJob::treesum(Scale::Tiny);
        assert_eq!(t.expected(), tb_spec::examples::treesum_expected(3, 4, 8));
        assert_eq!(t.arity(), 3, "treesum is the non-binary fan-out job");
    }

    #[test]
    fn fib_expected_closed_form() {
        assert_eq!(FibJob { n: 10 }.expected(), 55);
        assert_eq!(FibJob { n: 20 }.expected(), 6765);
        assert_eq!(FibJob { n: 0 }.expected(), 0);
    }
}
