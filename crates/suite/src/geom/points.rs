//! Deterministic point-cloud generators.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// `n` points uniform in the unit cube, deterministic in `seed`.
pub fn uniform_cube(n: usize, seed: u64) -> Vec<[f32; 3]> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| [rng.random::<f32>(), rng.random::<f32>(), rng.random::<f32>()]).collect()
}

/// `n` points in a centrally condensed (Plummer-like) distribution — the
/// classic Barnes-Hut input shape, which produces a deep, unbalanced
/// octree. Deterministic in `seed`; coordinates clamped to a finite box.
pub fn plummer_cloud(n: usize, seed: u64) -> Vec<[f32; 3]> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Plummer radius: r = (u^{-2/3} - 1)^{-1/2}, direction uniform.
            let u: f64 = rng.random_range(1e-6..1.0);
            let r = (u.powf(-2.0 / 3.0) - 1.0).powf(-0.5).min(8.0) as f32;
            let z: f32 = rng.random_range(-1.0..1.0);
            let phi: f32 = rng.random_range(0.0..std::f32::consts::TAU);
            let s = (1.0 - z * z).max(0.0).sqrt();
            [r * s * phi.cos(), r * s * phi.sin(), r * z]
        })
        .collect()
}

/// Squared Euclidean distance.
#[inline]
pub fn dist2(a: &[f32; 3], b: &[f32; 3]) -> f32 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_cube(100, 1), uniform_cube(100, 1));
        assert_eq!(plummer_cloud(100, 1), plummer_cloud(100, 1));
        assert_ne!(uniform_cube(100, 1), uniform_cube(100, 2));
    }

    #[test]
    fn uniform_points_are_in_cube() {
        for p in uniform_cube(1000, 3) {
            for c in p {
                assert!((0.0..=1.0).contains(&c));
            }
        }
    }

    #[test]
    fn plummer_is_centrally_condensed() {
        let pts = plummer_cloud(2000, 5);
        let near = pts.iter().filter(|p| dist2(p, &[0.0; 3]) < 1.0).count();
        assert!(near > 500, "central condensation expected, got {near}/2000 inside r=1");
    }

    #[test]
    fn dist2_is_correct() {
        assert_eq!(dist2(&[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]), 25.0);
    }
}
