//! A median-split kd-tree with SoA leaf storage.
//!
//! Point correlation and kNN traverse this tree once per query point. The
//! points are permuted so every leaf owns a contiguous range of the three
//! coordinate columns — exactly what the vectorized leaf scans (the
//! "data-parallel base case" of the paper's three-level nesting) need.

/// One kd-tree node.
#[derive(Debug, Clone)]
pub struct KdNode {
    /// Axis-aligned bounding box, min corner.
    pub bb_min: [f32; 3],
    /// Axis-aligned bounding box, max corner.
    pub bb_max: [f32; 3],
    /// Children ids, -1 for leaves.
    pub left: i32,
    /// See `left`.
    pub right: i32,
    /// Start of this node's point range (leaves only own it exclusively).
    pub start: u32,
    /// End (exclusive) of the point range.
    pub end: u32,
}

impl KdNode {
    /// Is this node a leaf?
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left < 0
    }

    /// Squared distance from `p` to this node's bounding box (0 inside).
    #[inline]
    pub fn dist2_to(&self, p: &[f32; 3]) -> f32 {
        let mut d2 = 0.0;
        for ((&pd, &lo), &hi) in p.iter().zip(&self.bb_min).zip(&self.bb_max) {
            let diff = pd - pd.clamp(lo, hi);
            d2 += diff * diff;
        }
        d2
    }
}

/// kd-tree over 3-D points, coordinates stored column-wise.
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<KdNode>,
    /// X coordinates, permuted to leaf order.
    pub xs: Vec<f32>,
    /// Y coordinates.
    pub ys: Vec<f32>,
    /// Z coordinates.
    pub zs: Vec<f32>,
    /// Original index of each stored point.
    pub ids: Vec<u32>,
}

impl KdTree {
    /// Build over `points` with leaves of at most `leaf_size` points.
    pub fn build(points: &[[f32; 3]], leaf_size: usize) -> Self {
        assert!(!points.is_empty());
        let leaf_size = leaf_size.max(1);
        let mut idx: Vec<u32> = (0..points.len() as u32).collect();
        let mut tree = KdTree {
            nodes: Vec::new(),
            xs: Vec::with_capacity(points.len()),
            ys: Vec::with_capacity(points.len()),
            zs: Vec::with_capacity(points.len()),
            ids: Vec::with_capacity(points.len()),
        };
        tree.split(points, &mut idx, leaf_size);
        tree
    }

    fn split(&mut self, points: &[[f32; 3]], idx: &mut [u32], leaf_size: usize) -> i32 {
        let mut bb_min = [f32::INFINITY; 3];
        let mut bb_max = [f32::NEG_INFINITY; 3];
        for &i in idx.iter() {
            let p = &points[i as usize];
            for d in 0..3 {
                bb_min[d] = bb_min[d].min(p[d]);
                bb_max[d] = bb_max[d].max(p[d]);
            }
        }
        let id = self.nodes.len() as i32;
        self.nodes.push(KdNode { bb_min, bb_max, left: -1, right: -1, start: 0, end: 0 });

        if idx.len() <= leaf_size {
            let start = self.xs.len() as u32;
            for &i in idx.iter() {
                let p = points[i as usize];
                self.xs.push(p[0]);
                self.ys.push(p[1]);
                self.zs.push(p[2]);
                self.ids.push(i);
            }
            let end = self.xs.len() as u32;
            self.nodes[id as usize].start = start;
            self.nodes[id as usize].end = end;
            return id;
        }
        // Split on the widest dimension at the median.
        let dim =
            (0..3).max_by(|&a, &b| (bb_max[a] - bb_min[a]).total_cmp(&(bb_max[b] - bb_min[b]))).unwrap();
        let mid = idx.len() / 2;
        idx.select_nth_unstable_by(mid, |&a, &b| points[a as usize][dim].total_cmp(&points[b as usize][dim]));
        let (lo, hi) = idx.split_at_mut(mid);
        let left = self.split(points, lo, leaf_size);
        let right = self.split(points, hi, leaf_size);
        self.nodes[id as usize].left = left;
        self.nodes[id as usize].right = right;
        self.nodes[id as usize].start = self.nodes[left as usize].start;
        self.nodes[id as usize].end = self.nodes[right as usize].end;
        id
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when empty (never: `build` requires points).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Tree depth (root = 1).
    pub fn depth(&self) -> usize {
        fn rec(t: &KdTree, id: i32) -> usize {
            if id < 0 {
                return 0;
            }
            let n = &t.nodes[id as usize];
            if n.is_leaf() {
                1
            } else {
                1 + rec(t, n.left).max(rec(t, n.right))
            }
        }
        rec(self, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::points::{dist2, uniform_cube};

    #[test]
    fn stores_every_point_once() {
        let pts = uniform_cube(333, 7);
        let t = KdTree::build(&pts, 8);
        assert_eq!(t.len(), 333);
        let mut ids = t.ids.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 333);
    }

    #[test]
    fn bboxes_contain_their_points() {
        let pts = uniform_cube(200, 9);
        let t = KdTree::build(&pts, 4);
        for n in &t.nodes {
            for i in n.start..n.end {
                let p = [t.xs[i as usize], t.ys[i as usize], t.zs[i as usize]];
                for ((&pd, &lo), &hi) in p.iter().zip(&n.bb_min).zip(&n.bb_max) {
                    assert!(pd >= lo - 1e-6 && pd <= hi + 1e-6);
                }
            }
        }
    }

    #[test]
    fn bbox_distance_is_lower_bound() {
        let pts = uniform_cube(100, 11);
        let t = KdTree::build(&pts, 4);
        let q = [2.0f32, 2.0, 2.0];
        for n in &t.nodes {
            let lb = n.dist2_to(&q);
            for i in n.start..n.end {
                let p = [t.xs[i as usize], t.ys[i as usize], t.zs[i as usize]];
                assert!(dist2(&q, &p) >= lb - 1e-5);
            }
        }
    }

    #[test]
    fn depth_is_balanced() {
        let t = KdTree::build(&uniform_cube(1024, 13), 8);
        let d = t.depth();
        assert!((7..=10).contains(&d), "median split should balance: depth {d}");
    }
}
