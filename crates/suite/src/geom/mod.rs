//! Geometric substrates: point clouds, the Barnes-Hut octree and the
//! kd-tree used by point correlation and k-nearest-neighbours.

pub mod kdtree;
pub mod octree;
pub mod points;

pub use kdtree::KdTree;
pub use octree::Octree;
pub use points::{plummer_cloud, uniform_cube};
