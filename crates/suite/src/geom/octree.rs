//! A Barnes-Hut octree with centre-of-mass summaries.

/// One octree node.
#[derive(Debug, Clone)]
pub struct OtNode {
    /// Geometric centre of the cell.
    pub center: [f32; 3],
    /// Half the cell's edge length.
    pub half: f32,
    /// Centre of mass of the bodies inside.
    pub com: [f32; 3],
    /// Total mass inside.
    pub mass: f32,
    /// Child node ids per octant (-1 = empty).
    pub children: [i32; 8],
    /// Body id if this is a leaf holding one body, else -1.
    pub body: i32,
    /// Number of bodies in the subtree.
    pub count: u32,
}

impl OtNode {
    /// Is this a single-body leaf?
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.body >= 0
    }
}

/// An octree over a set of unit-mass bodies.
#[derive(Debug, Clone)]
pub struct Octree {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<OtNode>,
    /// The body positions the tree was built over.
    pub bodies: Vec<[f32; 3]>,
}

impl Octree {
    /// Build over `bodies` (unit masses). The root cell is the bounding
    /// cube; cells subdivide until they hold a single body.
    pub fn build(bodies: Vec<[f32; 3]>) -> Self {
        assert!(!bodies.is_empty(), "octree needs at least one body");
        let mut lo = [f32::INFINITY; 3];
        let mut hi = [f32::NEG_INFINITY; 3];
        for b in &bodies {
            for d in 0..3 {
                lo[d] = lo[d].min(b[d]);
                hi[d] = hi[d].max(b[d]);
            }
        }
        let center = [(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0, (lo[2] + hi[2]) / 2.0];
        let half = (0..3).map(|d| (hi[d] - lo[d]) / 2.0).fold(0.0f32, f32::max).max(1e-6) * 1.0001;
        let mut tree = Octree { nodes: Vec::new(), bodies };
        let all: Vec<u32> = (0..tree.bodies.len() as u32).collect();
        tree.subdivide(center, half, all);
        tree
    }

    fn subdivide(&mut self, center: [f32; 3], half: f32, members: Vec<u32>) -> i32 {
        let id = self.nodes.len() as i32;
        self.nodes.push(OtNode {
            center,
            half,
            com: [0.0; 3],
            mass: 0.0,
            children: [-1; 8],
            body: -1,
            count: members.len() as u32,
        });
        let mut com = [0f64; 3];
        for &m in &members {
            for (c, &b) in com.iter_mut().zip(&self.bodies[m as usize]) {
                *c += f64::from(b);
            }
        }
        let mass = members.len() as f32;
        let n = members.len() as f64;
        self.nodes[id as usize].com = [(com[0] / n) as f32, (com[1] / n) as f32, (com[2] / n) as f32];
        self.nodes[id as usize].mass = mass;

        if members.len() == 1 {
            self.nodes[id as usize].body = members[0] as i32;
            return id;
        }
        // Partition by octant. Coincident points would recurse forever, so
        // below a size floor the cell keeps its members as direct leaves.
        if half < 1e-7 {
            // Degenerate cluster: represent as a leaf of the first body
            // with the aggregate mass (physically a point mass).
            self.nodes[id as usize].body = members[0] as i32;
            return id;
        }
        let mut buckets: [Vec<u32>; 8] = Default::default();
        for m in members {
            let b = &self.bodies[m as usize];
            let mut oct = 0usize;
            for d in 0..3 {
                if b[d] >= center[d] {
                    oct |= 1 << d;
                }
            }
            buckets[oct].push(m);
        }
        for (oct, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let off = half / 2.0;
            let ccenter = [
                center[0] + if oct & 1 != 0 { off } else { -off },
                center[1] + if oct & 2 != 0 { off } else { -off },
                center[2] + if oct & 4 != 0 { off } else { -off },
            ];
            let child = self.subdivide(ccenter, off, bucket);
            self.nodes[id as usize].children[oct] = child;
        }
        id
    }

    /// Number of tree levels (root = level 1).
    pub fn depth(&self) -> usize {
        fn rec(t: &Octree, id: i32) -> usize {
            if id < 0 {
                return 0;
            }
            let n = &t.nodes[id as usize];
            if n.is_leaf() {
                return 1;
            }
            1 + n.children.iter().map(|&c| rec(t, c)).max().unwrap_or(0)
        }
        rec(self, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::points::uniform_cube;

    #[test]
    fn builds_and_preserves_mass() {
        let pts = uniform_cube(500, 11);
        let t = Octree::build(pts);
        assert_eq!(t.nodes[0].mass, 500.0);
        assert_eq!(t.nodes[0].count, 500);
    }

    #[test]
    fn root_com_is_centroid() {
        let pts = vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [1.0, 1.0, 0.0]];
        let t = Octree::build(pts);
        let com = t.nodes[0].com;
        assert!((com[0] - 0.5).abs() < 1e-6);
        assert!((com[1] - 0.5).abs() < 1e-6);
        assert!(com[2].abs() < 1e-6);
    }

    #[test]
    fn leaves_hold_single_bodies() {
        let pts = uniform_cube(64, 3);
        let t = Octree::build(pts);
        let leaf_bodies: Vec<i32> = t.nodes.iter().filter(|n| n.is_leaf()).map(|n| n.body).collect();
        let mut sorted = leaf_bodies.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "every body in exactly one leaf");
    }

    #[test]
    fn depth_is_logarithmic_for_uniform_points() {
        let t = Octree::build(uniform_cube(4096, 9));
        let d = t.depth();
        assert!((4..=16).contains(&d), "depth {d}");
    }

    #[test]
    fn single_body_tree() {
        let t = Octree::build(vec![[0.5, 0.5, 0.5]]);
        assert!(t.nodes[0].is_leaf());
        assert_eq!(t.depth(), 1);
    }
}
