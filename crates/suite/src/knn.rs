//! `knn` — k-nearest neighbours within a search radius, via kd-tree.
//!
//! Paper input: 100 K points — 15 levels, 1.36 G tasks, `float` data,
//! 4-wide vectors. Like [`crate::pointcorr`] this nests a data-parallel
//! leaf scan inside a task-parallel tree recursion inside a data-parallel
//! query loop.
//!
//! To keep tasks independent (the Cilk condition every scheduler here
//! relies on), pruning uses the *fixed* search radius `r0` rather than the
//! running k-th-best distance — the standard formulation for vectorized
//! kNN (Jo et al., PACT'13): each query returns the `K` smallest distances
//! among points within `r0`. The per-query result lists merge
//! associatively, so the reduction is deterministic under any execution
//! order.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};
use tb_simd::{Lanes, SoaVec2};

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::geom::kdtree::KdTree;
use crate::geom::points::uniform_cube;
use crate::outcome::Outcome;

const Q: usize = 4;
const LEAF: usize = 8;

/// Neighbours kept per query.
pub const K: usize = 4;

/// A query's running k-best squared distances, ascending; `INFINITY` pads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KBest(pub [f32; K]);

impl Default for KBest {
    fn default() -> Self {
        KBest([f32::INFINITY; K])
    }
}

impl KBest {
    /// Insert a candidate squared distance.
    #[inline]
    pub fn insert(&mut self, d2: f32) {
        if d2 >= self.0[K - 1] {
            return;
        }
        let mut i = K - 1;
        while i > 0 && self.0[i - 1] > d2 {
            self.0[i] = self.0[i - 1];
            i -= 1;
        }
        self.0[i] = d2;
    }

    /// Merge another list (associative, commutative).
    pub fn merge(&mut self, o: &KBest) {
        for &d in &o.0 {
            if d.is_finite() {
                self.insert(d);
            }
        }
    }

    /// Sum of the finite kept distances.
    pub fn finite_sum(&self) -> f64 {
        self.0.iter().filter(|d| d.is_finite()).map(|&d| f64::from(d)).sum()
    }
}

/// Per-worker reducer: one [`KBest`] per query.
#[derive(Debug, Clone)]
pub struct KnnResult {
    best: Vec<KBest>,
}

impl KnnResult {
    fn new(nq: usize) -> Self {
        KnnResult { best: vec![KBest::default(); nq] }
    }

    fn merge(&mut self, o: KnnResult) {
        for (a, b) in self.best.iter_mut().zip(&o.best) {
            a.merge(b);
        }
    }

    /// The scalar the harness compares: total kept distance mass.
    pub fn total(&self) -> f64 {
        self.best.iter().map(KBest::finite_sum).sum()
    }
}

/// The kNN benchmark.
pub struct Knn {
    tree: KdTree,
    queries: Vec<[f32; 3]>,
    r2: f32,
}

impl Knn {
    /// Presets: tiny 512 / 64, small 30 000 / 2 000, paper 100 000 /
    /// 100 000. The radius targets ~25 candidates per query so the K
    /// nearest are virtually always inside it.
    pub fn new(scale: Scale) -> Self {
        let (n, nq) = match scale {
            Scale::Tiny => (512, 64),
            Scale::Small => (30_000, 2_000),
            Scale::Paper => (100_000, 100_000),
        };
        let points = uniform_cube(n, 0x6B6E_6E01);
        // Query points are offset from data points so self-matches don't
        // dominate the k-best lists.
        let queries = uniform_cube(nq, 0x6B6E_6E02);
        let r = (25.0 * 3.0 / (4.0 * std::f32::consts::PI * n as f32)).cbrt();
        Knn { tree: KdTree::build(&points, LEAF), queries, r2: r * r }
    }

    /// Number of queries.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }
}

/// Scalar leaf scan.
#[inline]
fn leaf_scan_scalar(t: &KdTree, start: u32, end: u32, q: &[f32; 3], r2: f32, best: &mut KBest) {
    for i in start as usize..end as usize {
        let dx = t.xs[i] - q[0];
        let dy = t.ys[i] - q[1];
        let dz = t.zs[i] - q[2];
        let d2 = dx * dx + dy * dy + dz * dz;
        if d2 <= r2 {
            best.insert(d2);
        }
    }
}

/// Vectorized leaf scan: distances 8 at a time, insertion scalar on the
/// (rare) in-radius lanes.
#[inline]
fn leaf_scan_simd(t: &KdTree, start: u32, end: u32, q: &[f32; 3], r2: f32, best: &mut KBest) {
    let (s, e) = (start as usize, end as usize);
    let qx = Lanes::<f32, 8>::splat(q[0]);
    let qy = Lanes::<f32, 8>::splat(q[1]);
    let qz = Lanes::<f32, 8>::splat(q[2]);
    let rr = Lanes::<f32, 8>::splat(r2);
    let mut i = s;
    while i + 8 <= e {
        let dx = Lanes::<f32, 8>::from_slice(&t.xs[i..]) - qx;
        let dy = Lanes::<f32, 8>::from_slice(&t.ys[i..]) - qy;
        let dz = Lanes::<f32, 8>::from_slice(&t.zs[i..]) - qz;
        let d2 = dx * dx + dy * dy + dz * dz;
        let m = d2.le(rr);
        if m.any() {
            for lane in 0..8 {
                if m.0[lane] {
                    best.insert(d2.lane(lane));
                }
            }
        }
        i += 8;
    }
    leaf_scan_scalar(t, i as u32, end, q, r2, best);
}

/// One traversal step for `(query, node)`.
#[inline]
fn expand_one(
    knn: &Knn,
    query: u32,
    node: u32,
    simd: bool,
    red: &mut KnnResult,
    mut spawn: impl FnMut(usize, u32),
) {
    let n = &knn.tree.nodes[node as usize];
    let q = &knn.queries[query as usize];
    if n.dist2_to(q) > knn.r2 {
        return;
    }
    if n.is_leaf() {
        let best = &mut red.best[query as usize];
        if simd {
            leaf_scan_simd(&knn.tree, n.start, n.end, q, knn.r2, best);
        } else {
            leaf_scan_scalar(&knn.tree, n.start, n.end, q, knn.r2, best);
        }
        return;
    }
    spawn(0, n.left as u32);
    spawn(1, n.right as u32);
}

/// Serial kNN over all queries; returns (result, task count).
pub fn knn_serial(knn: &Knn) -> (KnnResult, u64) {
    let mut red = KnnResult::new(knn.queries.len());
    let mut tasks = 0u64;
    let mut stack = Vec::new();
    for query in 0..knn.queries.len() as u32 {
        stack.push(0u32);
        while let Some(node) = stack.pop() {
            tasks += 1;
            expand_one(knn, query, node, false, &mut red, |_, c| stack.push(c));
        }
    }
    (red, tasks)
}

fn query_cilk(knn: &Knn, ctx: &WorkerCtx<'_>, query: u32, node: u32) -> KBest {
    let n = &knn.tree.nodes[node as usize];
    let q = &knn.queries[query as usize];
    let mut best = KBest::default();
    if n.dist2_to(q) > knn.r2 {
        return best;
    }
    if n.is_leaf() {
        leaf_scan_scalar(&knn.tree, n.start, n.end, q, knn.r2, &mut best);
        return best;
    }
    let (l, r) = (n.left as u32, n.right as u32);
    let (mut a, b) = ctx.join(move |c| query_cilk(knn, c, query, l), move |c| query_cilk(knn, c, query, r));
    a.merge(&b);
    a
}

struct KnnAos<'k> {
    knn: &'k Knn,
}

impl BlockProgram for KnnAos<'_> {
    type Store = Vec<(u32, u32)>;
    type Reducer = KnnResult;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Self::Store {
        (0..self.knn.queries.len() as u32).map(|q| (q, 0)).collect()
    }

    fn make_reducer(&self) -> KnnResult {
        KnnResult::new(self.knn.queries.len())
    }

    fn merge_reducers(&self, a: &mut KnnResult, b: KnnResult) {
        a.merge(b);
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut KnnResult) {
        for (query, node) in block.drain(..) {
            expand_one(self.knn, query, node, false, red, |site, c| out.bucket(site).push((query, c)));
        }
    }
}

struct KnnSoa<'k> {
    knn: &'k Knn,
    simd: bool,
}

impl BlockProgram for KnnSoa<'_> {
    type Store = SoaVec2<u32, u32>;
    type Reducer = KnnResult;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Self::Store {
        let mut s = SoaVec2::with_capacity(self.knn.queries.len());
        for q in 0..self.knn.queries.len() as u32 {
            s.push(q, 0);
        }
        s
    }

    fn make_reducer(&self) -> KnnResult {
        KnnResult::new(self.knn.queries.len())
    }

    fn merge_reducers(&self, a: &mut KnnResult, b: KnnResult) {
        a.merge(b);
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut KnnResult) {
        for i in 0..block.num_tasks() {
            let (query, node) = block.get(i);
            expand_one(self.knn, query, node, self.simd, red, |site, c| out.bucket(site).push(query, c));
        }
        block.clear();
    }
}

impl Benchmark for Knn {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "data-in-task-in-data"
    }

    fn tolerance(&self) -> f64 {
        1e-6
    }

    fn simd_is_explicit(&self) -> bool {
        true
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (r, tasks) = knn_serial(self);
            (Outcome::Approx(r.total()), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        cilk_summary(Q, pool, |p| {
            Outcome::Approx(p.install(|ctx| {
                fn queries(knn: &Knn, ctx: &WorkerCtx<'_>, lo: u32, hi: u32) -> f64 {
                    if hi - lo == 1 {
                        return query_cilk(knn, ctx, lo, 0).finite_sum();
                    }
                    let mid = lo + (hi - lo) / 2;
                    let (a, b) =
                        ctx.join(move |c| queries(knn, c, lo, mid), move |c| queries(knn, c, mid, hi));
                    a + b
                }
                queries(self, ctx, 0, self.queries.len() as u32)
            }))
        })
    }

    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary {
        let to = |r: KnnResult| Outcome::Approx(r.total());
        match tier {
            Tier::Block => seq_summary(&KnnAos { knn: self }, cfg, to),
            Tier::Soa => seq_summary(&KnnSoa { knn: self, simd: false }, cfg, to),
            Tier::Simd => seq_summary(&KnnSoa { knn: self, simd: true }, cfg, to),
        }
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: Tier,
    ) -> RunSummary {
        let to = |r: KnnResult| Outcome::Approx(r.total());
        match tier {
            Tier::Block => par_summary(&KnnAos { knn: self }, pool, cfg, kind, to),
            Tier::Soa => par_summary(&KnnSoa { knn: self, simd: false }, pool, cfg, kind, to),
            Tier::Simd => par_summary(&KnnSoa { knn: self, simd: true }, pool, cfg, kind, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::points::dist2;

    #[test]
    fn kbest_keeps_smallest_sorted() {
        let mut b = KBest::default();
        for d in [5.0, 1.0, 3.0, 2.0, 4.0, 0.5] {
            b.insert(d);
        }
        assert_eq!(b.0, [0.5, 1.0, 2.0, 3.0]);
        let mut other = KBest::default();
        other.insert(0.1);
        b.merge(&other);
        assert_eq!(b.0, [0.1, 0.5, 1.0, 2.0]);
    }

    /// Brute-force per-query reference.
    fn brute(knn: &Knn) -> f64 {
        let t = &knn.tree;
        let mut total = 0.0;
        for q in &knn.queries {
            let mut best = KBest::default();
            for i in 0..t.len() {
                let p = [t.xs[i], t.ys[i], t.zs[i]];
                let d2 = dist2(q, &p);
                if d2 <= knn.r2 {
                    best.insert(d2);
                }
            }
            total += best.finite_sum();
        }
        total
    }

    #[test]
    fn serial_matches_brute_force() {
        let knn = Knn::new(Scale::Tiny);
        let (r, _) = knn_serial(&knn);
        let b = brute(&knn);
        assert!((r.total() - b).abs() <= 1e-9 * b.abs().max(1.0));
    }

    #[test]
    fn all_variants_agree() {
        let knn = Knn::new(Scale::Tiny);
        let want = knn.serial().outcome;
        let tol = knn.tolerance();
        let pool = ThreadPool::new(2);
        assert!(knn.cilk(&pool).outcome.matches(&want, tol));
        for tier in [Tier::Block, Tier::Soa, Tier::Simd] {
            let cfg = SchedConfig::restart(Q, 256, 64);
            assert!(knn.blocked_seq(cfg, tier).outcome.matches(&want, tol), "{tier:?}");
            for kind in
                [SchedulerKind::ReExpansion, SchedulerKind::RestartSimplified, SchedulerKind::RestartIdeal]
            {
                assert!(knn.blocked_par(&pool, cfg, kind, tier).outcome.matches(&want, tol), "{kind:?}");
            }
        }
    }
}
