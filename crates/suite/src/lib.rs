//! # tb-suite — the eleven PPoPP'17 benchmarks and their substrates
//!
//! Every benchmark from Table 1 of the paper, re-derived from its published
//! description, in up to five forms:
//!
//! 1. **serial** — the plain recursive program (the paper's `Ts` baseline);
//! 2. **cilk** — per-task `join` forks on `tb-runtime` (the paper's input
//!    Cilk program, `T1`/`T16`);
//! 3. **blocked AoS** — a [`tb_core::BlockProgram`] over `Vec<Task>`
//!    (Table 2's *Block* tier);
//! 4. **blocked SoA** — the same program over struct-of-arrays columns
//!    (Table 2's *SOA* tier);
//! 5. **SIMD** — the SoA program with explicit [`tb_simd::Lanes`] kernels
//!    and streaming compaction where the benchmark's inner loop warrants it
//!    (Table 2's *SIMD* tier; benchmarks whose per-task work is dominated
//!    by irregular control flow keep the SoA kernel, as documented per
//!    module).
//!
//! | module | paper input | tree (levels, tasks) | parallelism nesting |
//! |--------|-------------|----------------------|---------------------|
//! | [`fib`] | fib(45) | 45, 3.67 G | task only |
//! | [`knapsack`] | 31 items | 31, 2.15 G | task only |
//! | [`parentheses`] | n=19 | 37, 4.85 G | task only |
//! | [`nqueens`] | 15×15 | 16, 168 M | data in task |
//! | [`graphcol`] | 3 colours, 38 verts | 39, 42.4 M | data in task |
//! | [`uts`] | binomial | 228, 19.9 M | task only |
//! | [`binomial`] | C(36,13) | 36, 4.62 G | task only |
//! | [`minmax`] | 4×4 board | 13, 2.42 G | task only |
//! | [`barneshut`] | 1 M bodies | 18, 3.0 G | task in data |
//! | [`pointcorr`] | 300 K points | 18, 1.77 G | data in task in data |
//! | [`knn`] | 100 K points | 15, 1.36 G | data in task in data |
//!
//! Paper-scale inputs are supported (`Scale::Paper`) but the default
//! [`Scale::Small`] presets shrink each input while keeping its tree
//! *shape* (unbalance, fan-out, depth-vs-width regime), so the whole
//! harness runs in minutes on a laptop.

pub mod bench;
pub mod jobs;
pub mod outcome;

pub mod barneshut;
pub mod binomial;
pub mod fib;
pub mod graphcol;
pub mod knapsack;
pub mod knn;
pub mod minmax;
pub mod nqueens;
pub mod parentheses;
pub mod pointcorr;
pub mod uts;

pub mod geom;
pub mod graphs;
pub mod uts_rng;

pub use bench::{all_benchmarks, benchmark_by_name, Benchmark, RunSummary, Scale, Tier};
pub use outcome::Outcome;
pub use tb_core::SchedulerKind;
