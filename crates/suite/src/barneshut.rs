//! `barneshut` — the Barnes-Hut force-computation phase.
//!
//! Paper input: 1 M bodies — 18 levels, 3.0 G tasks, `float` data, 4-wide
//! vectors. This is the paper's flagship *task-parallelism-nested-in-data-
//! parallelism* benchmark (Fig. 2): a data-parallel loop over bodies, each
//! iteration a task-parallel recursive traversal of the octree with the
//! Barnes-Hut opening criterion deciding between approximating a cell by
//! its centre of mass (base case) and descending into its children
//! (spawns, arity 8).
//!
//! The root block contains one `(body, root)` task per body; the scheduler
//! strip-mines it (§5.3). Forces accumulate into per-worker dense arrays
//! (one `[f64; 3]` per body), merged after the run — contribution terms are
//! computed in `f32` (bitwise identical across variants) and summed in
//! `f64`, so outcomes agree across schedulers to ~1e-9 relative.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};
use tb_simd::{Lanes, SoaVec2};

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::geom::octree::Octree;
use crate::geom::points::plummer_cloud;
use crate::outcome::Outcome;

const Q: usize = 4;
const EPS2: f32 = 1e-4;

/// The Barnes-Hut benchmark: an octree plus the opening parameter θ.
pub struct BarnesHut {
    tree: Octree,
    theta2: f32,
}

impl BarnesHut {
    /// Presets: tiny 256 bodies, small 20 000, paper 1 000 000 — all
    /// Plummer-distributed (centrally condensed, deep octree), θ = 0.6.
    pub fn new(scale: Scale) -> Self {
        let n = match scale {
            Scale::Tiny => 256,
            Scale::Small => 20_000,
            Scale::Paper => 1_000_000,
        };
        Self::with_bodies(plummer_cloud(n, 0xBA12_BA12), 0.6)
    }

    /// Build from explicit bodies and opening angle θ.
    pub fn with_bodies(bodies: Vec<[f32; 3]>, theta: f32) -> Self {
        BarnesHut { tree: Octree::build(bodies), theta2: theta * theta }
    }

    /// Number of bodies.
    pub fn n_bodies(&self) -> usize {
        self.tree.bodies.len()
    }

    /// The octree.
    pub fn tree(&self) -> &Octree {
        &self.tree
    }
}

/// Per-worker force accumulator: one `[f64; 3]` per body.
#[derive(Debug, Clone)]
pub struct Forces {
    f: Vec<[f64; 3]>,
}

impl Forces {
    fn zeros(n: usize) -> Self {
        Forces { f: vec![[0.0; 3]; n] }
    }

    #[inline]
    fn add(&mut self, body: u32, g: [f32; 3]) {
        let slot = &mut self.f[body as usize];
        slot[0] += f64::from(g[0]);
        slot[1] += f64::from(g[1]);
        slot[2] += f64::from(g[2]);
    }

    fn merge(&mut self, o: Forces) {
        for (a, b) in self.f.iter_mut().zip(o.f) {
            a[0] += b[0];
            a[1] += b[1];
            a[2] += b[2];
        }
    }

    /// Sum of force magnitudes — the scalar the harness compares.
    pub fn magnitude_sum(&self) -> f64 {
        self.f.iter().map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()).sum()
    }
}

/// The single-interaction kernel: force of a cell (com, mass) on `p`,
/// computed entirely in `f32` so every variant produces identical terms.
#[inline]
fn interaction(p: &[f32; 3], com: &[f32; 3], mass: f32) -> [f32; 3] {
    let dx = com[0] - p[0];
    let dy = com[1] - p[1];
    let dz = com[2] - p[2];
    let dr2 = dx * dx + dy * dy + dz * dz + EPS2;
    let inv = 1.0 / (dr2 * dr2.sqrt());
    let g = mass * inv;
    [g * dx, g * dy, g * dz]
}

/// One traversal step for `(body, node)`: either call `add` with the
/// cell's point-mass contribution (base case per the opening criterion) or
/// `spawn` the children. Shared by every variant.
#[inline]
fn expand_one_generic(
    bh: &BarnesHut,
    body: u32,
    node: u32,
    add: &mut impl FnMut([f32; 3]),
    mut spawn: impl FnMut(usize, u32),
) {
    let n = &bh.tree.nodes[node as usize];
    let p = &bh.tree.bodies[body as usize];
    if n.is_leaf() {
        if n.body != body as i32 {
            add(interaction(p, &n.com, n.mass));
        }
        return;
    }
    let dx = n.com[0] - p[0];
    let dy = n.com[1] - p[1];
    let dz = n.com[2] - p[2];
    let dr2 = dx * dx + dy * dy + dz * dz;
    let size2 = 4.0 * n.half * n.half;
    if size2 <= bh.theta2 * dr2 {
        // Far enough: the cell acts as a point mass (Fig. 2's "update p").
        add(interaction(p, &n.com, n.mass));
        return;
    }
    for (oct, &c) in n.children.iter().enumerate() {
        if c >= 0 {
            spawn(oct, c as u32);
        }
    }
}

/// [`expand_one_generic`] accumulating into the dense per-worker reducer.
#[inline]
fn expand_one(bh: &BarnesHut, body: u32, node: u32, red: &mut Forces, spawn: impl FnMut(usize, u32)) {
    let mut add = |g: [f32; 3]| red.add(body, g);
    expand_one_generic(bh, body, node, &mut add, spawn);
}

/// Serial traversal of every body; returns (forces, task count).
pub fn barneshut_serial(bh: &BarnesHut) -> (Forces, u64) {
    let mut red = Forces::zeros(bh.n_bodies());
    let mut tasks = 0u64;
    let mut stack: Vec<u32> = Vec::new();
    for body in 0..bh.n_bodies() as u32 {
        stack.push(0);
        while let Some(node) = stack.pop() {
            tasks += 1;
            expand_one(bh, body, node, &mut red, |_, c| stack.push(c));
        }
    }
    (red, tasks)
}

fn body_cilk(bh: &BarnesHut, ctx: &WorkerCtx<'_>, body: u32, node: u32) -> [f64; 3] {
    let mut acc = [0f64; 3];
    let mut kids: Vec<u32> = Vec::new();
    {
        let mut add = |g: [f32; 3]| {
            acc[0] += f64::from(g[0]);
            acc[1] += f64::from(g[1]);
            acc[2] += f64::from(g[2]);
        };
        expand_one_generic(bh, body, node, &mut add, |_, c| kids.push(c));
    }
    fn over(bh: &BarnesHut, ctx: &WorkerCtx<'_>, body: u32, mut kids: Vec<u32>) -> [f64; 3] {
        match kids.len() {
            0 => [0.0; 3],
            1 => body_cilk(bh, ctx, body, kids[0]),
            _ => {
                let right = kids.split_off(kids.len() / 2);
                let (a, b) = ctx.join(move |c| over(bh, c, body, kids), move |c| over(bh, c, body, right));
                [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
            }
        }
    }
    let sub = over(bh, ctx, body, kids);
    [acc[0] + sub[0], acc[1] + sub[1], acc[2] + sub[2]]
}

struct BhAos<'b> {
    bh: &'b BarnesHut,
}

impl BlockProgram for BhAos<'_> {
    type Store = Vec<(u32, u32)>;
    type Reducer = Forces;

    fn arity(&self) -> usize {
        8
    }

    fn make_root(&self) -> Self::Store {
        (0..self.bh.n_bodies() as u32).map(|b| (b, 0)).collect()
    }

    fn make_reducer(&self) -> Forces {
        Forces::zeros(self.bh.n_bodies())
    }

    fn merge_reducers(&self, a: &mut Forces, b: Forces) {
        a.merge(b);
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut Forces) {
        for (body, node) in block.drain(..) {
            expand_one(self.bh, body, node, red, |site, c| out.bucket(site).push((body, c)));
        }
    }
}

/// SoA program; `simd` turns on the 8-lane distance/interaction kernel
/// (gathered loads, vector arithmetic, per-lane routing).
struct BhSoa<'b> {
    bh: &'b BarnesHut,
    simd: bool,
}

impl BhSoa<'_> {
    #[inline]
    fn expand_simd(
        &self,
        block: &SoaVec2<u32, u32>,
        out: &mut BucketSet<SoaVec2<u32, u32>>,
        red: &mut Forces,
    ) {
        let bh = self.bh;
        let len = block.num_tasks();
        let mut i = 0;
        while i + 8 <= len {
            // Gather per-lane node and body data into lanes.
            let mut px = [0f32; 8];
            let mut py = [0f32; 8];
            let mut pz = [0f32; 8];
            let mut cx = [0f32; 8];
            let mut cy = [0f32; 8];
            let mut cz = [0f32; 8];
            let mut mass = [0f32; 8];
            let mut size2 = [0f32; 8];
            let mut is_leaf = [false; 8];
            let mut leaf_self = [false; 8];
            for lane in 0..8 {
                let (body, node) = block.get(i + lane);
                let n = &bh.tree.nodes[node as usize];
                let p = &bh.tree.bodies[body as usize];
                px[lane] = p[0];
                py[lane] = p[1];
                pz[lane] = p[2];
                cx[lane] = n.com[0];
                cy[lane] = n.com[1];
                cz[lane] = n.com[2];
                mass[lane] = n.mass;
                size2[lane] = 4.0 * n.half * n.half;
                is_leaf[lane] = n.is_leaf();
                leaf_self[lane] = n.body == body as i32;
            }
            let px = Lanes(px);
            let py = Lanes(py);
            let pz = Lanes(pz);
            let dx = Lanes(cx) - px;
            let dy = Lanes(cy) - py;
            let dz = Lanes(cz) - pz;
            let dr2 = dx * dx + dy * dy + dz * dz;
            // Opening test, vectorized: far ⇔ size2 <= θ²·dr2.
            let far = Lanes(size2).le(dr2 * Lanes::splat(bh.theta2));
            // Interaction magnitudes for all lanes (wasted work on spawn
            // lanes is the SIMD trade; they are masked out below).
            let dr2e = dr2 + Lanes::splat(EPS2);
            let inv = Lanes::splat(1.0f32) / (dr2e * dr2e.sqrt());
            let g = Lanes(mass) * inv;
            let gx = g * dx;
            let gy = g * dy;
            let gz = g * dz;
            for lane in 0..8 {
                let (body, node) = block.get(i + lane);
                let accumulate = if is_leaf[lane] { !leaf_self[lane] } else { far.0[lane] };
                if accumulate {
                    red.add(body, [gx.lane(lane), gy.lane(lane), gz.lane(lane)]);
                } else if !is_leaf[lane] {
                    let n = &bh.tree.nodes[node as usize];
                    for (oct, &c) in n.children.iter().enumerate() {
                        if c >= 0 {
                            out.bucket(oct).push(body, c as u32);
                        }
                    }
                }
            }
            i += 8;
        }
        for j in i..len {
            let (body, node) = block.get(j);
            expand_one(bh, body, node, red, |site, c| out.bucket(site).push(body, c));
        }
    }
}

impl BlockProgram for BhSoa<'_> {
    type Store = SoaVec2<u32, u32>;
    type Reducer = Forces;

    fn arity(&self) -> usize {
        8
    }

    fn make_root(&self) -> Self::Store {
        let mut s = SoaVec2::with_capacity(self.bh.n_bodies());
        for b in 0..self.bh.n_bodies() as u32 {
            s.push(b, 0);
        }
        s
    }

    fn make_reducer(&self) -> Forces {
        Forces::zeros(self.bh.n_bodies())
    }

    fn merge_reducers(&self, a: &mut Forces, b: Forces) {
        a.merge(b);
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut Forces) {
        if self.simd {
            self.expand_simd(block, out, red);
        } else {
            for idx in 0..block.num_tasks() {
                let (body, node) = block.get(idx);
                expand_one(self.bh, body, node, red, |site, c| out.bucket(site).push(body, c));
            }
        }
        block.clear();
    }
}

impl Benchmark for BarnesHut {
    fn name(&self) -> &'static str {
        "barneshut"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "task-in-data"
    }

    fn tolerance(&self) -> f64 {
        1e-6
    }

    fn simd_is_explicit(&self) -> bool {
        true
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (f, tasks) = barneshut_serial(self);
            (Outcome::Approx(f.magnitude_sum()), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        cilk_summary(Q, pool, |p| {
            let mag = p.install(|ctx| {
                fn bodies(bh: &BarnesHut, ctx: &WorkerCtx<'_>, lo: u32, hi: u32) -> f64 {
                    if hi - lo == 1 {
                        let f = body_cilk(bh, ctx, lo, 0);
                        return (f[0] * f[0] + f[1] * f[1] + f[2] * f[2]).sqrt();
                    }
                    let mid = lo + (hi - lo) / 2;
                    let (a, b) = ctx.join(move |c| bodies(bh, c, lo, mid), move |c| bodies(bh, c, mid, hi));
                    a + b
                }
                bodies(self, ctx, 0, self.n_bodies() as u32)
            });
            Outcome::Approx(mag)
        })
    }

    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary {
        let to = |f: Forces| Outcome::Approx(f.magnitude_sum());
        match tier {
            Tier::Block => seq_summary(&BhAos { bh: self }, cfg, to),
            Tier::Soa => seq_summary(&BhSoa { bh: self, simd: false }, cfg, to),
            Tier::Simd => seq_summary(&BhSoa { bh: self, simd: true }, cfg, to),
        }
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: Tier,
    ) -> RunSummary {
        let to = |f: Forces| Outcome::Approx(f.magnitude_sum());
        match tier {
            Tier::Block => par_summary(&BhAos { bh: self }, pool, cfg, kind, to),
            Tier::Soa => par_summary(&BhSoa { bh: self, simd: false }, pool, cfg, kind, to),
            Tier::Simd => par_summary(&BhSoa { bh: self, simd: true }, pool, cfg, kind, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct O(n²) summation for validation.
    fn direct_forces(bodies: &[[f32; 3]]) -> f64 {
        let mut total = 0.0;
        for (i, p) in bodies.iter().enumerate() {
            let mut f = [0f64; 3];
            for (j, q) in bodies.iter().enumerate() {
                if i == j {
                    continue;
                }
                let g = interaction(p, q, 1.0);
                f[0] += f64::from(g[0]);
                f[1] += f64::from(g[1]);
                f[2] += f64::from(g[2]);
            }
            total += (f[0] * f[0] + f[1] * f[1] + f[2] * f[2]).sqrt();
        }
        total
    }

    #[test]
    fn bh_approximates_direct_summation() {
        let bodies = plummer_cloud(200, 77);
        let bh = BarnesHut::with_bodies(bodies.clone(), 0.5);
        let (f, _) = barneshut_serial(&bh);
        let approx = f.magnitude_sum();
        let exact = direct_forces(&bodies);
        let rel = (approx - exact).abs() / exact;
        assert!(rel < 0.05, "BH error {rel} too large (θ=0.5)");
    }

    #[test]
    fn all_variants_agree() {
        let bh = BarnesHut::new(Scale::Tiny);
        let want = bh.serial().outcome;
        let tol = bh.tolerance();
        let pool = ThreadPool::new(2);
        assert!(bh.cilk(&pool).outcome.matches(&want, tol));
        for tier in [Tier::Block, Tier::Soa, Tier::Simd] {
            let cfg = SchedConfig::restart(Q, 256, 64);
            assert!(bh.blocked_seq(cfg, tier).outcome.matches(&want, tol), "{tier:?}");
            for kind in
                [SchedulerKind::ReExpansion, SchedulerKind::RestartSimplified, SchedulerKind::RestartIdeal]
            {
                assert!(bh.blocked_par(&pool, cfg, kind, tier).outcome.matches(&want, tol), "{kind:?}");
            }
        }
    }

    #[test]
    fn task_counts_match_across_variants() {
        let bh = BarnesHut::new(Scale::Tiny);
        let (_, serial_tasks) = barneshut_serial(&bh);
        let cfg = SchedConfig::reexpansion(Q, 512);
        let run = bh.blocked_seq(cfg, Tier::Block);
        assert_eq!(run.stats.tasks_executed, serial_tasks);
        let simd = bh.blocked_seq(cfg, Tier::Simd);
        assert_eq!(simd.stats.tasks_executed, serial_tasks);
    }
}
