//! `graphcol` — counting proper 3-colourings of a random graph.
//!
//! Paper input: 3 colours on a 38-vertex graph — 39 levels, 42.4 M tasks.
//! Vertices are coloured in index order; a task carries the vertex to
//! colour next plus one occupancy bitmask per colour, and spawns one child
//! per colour that no earlier neighbour already uses (the data-parallel
//! loop over colours nested in the task recursion). Fan-out shrinks as the
//! graph constrains choices, which gives the benchmark its irregularity.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};
use tb_simd::SoaVec4;

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::graphs::Graph;
use crate::outcome::Outcome;

const Q: usize = 16;
const COLORS: usize = 3;

/// The graph-colouring benchmark on a fixed random graph.
pub struct GraphCol {
    graph: Graph,
}

impl GraphCol {
    /// Presets: tiny 12 vertices, small 26, paper 38 — all with the edge
    /// density (1/4) that keeps the colouring tree large but finite.
    pub fn new(scale: Scale) -> Self {
        let n = match scale {
            Scale::Tiny => 12,
            Scale::Small => 26,
            Scale::Paper => 38,
        };
        GraphCol { graph: Graph::random(n, 1, 4, 0xC01C_C01C) }
    }

    /// The instance's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

type Task = (u8, u64, u64, u64); // (next vertex, colour-0 set, colour-1 set, colour-2 set)

#[inline]
fn expand_one(g: &Graph, t: Task, red: &mut u64, mut spawn: impl FnMut(usize, Task)) {
    let (v, m0, m1, m2) = t;
    if v as usize == g.n {
        *red += 1;
        return;
    }
    let adj = g.adj[v as usize];
    let bit = 1u64 << v;
    let masks = [m0, m1, m2];
    for (c, &mc) in masks.iter().enumerate() {
        if adj & mc == 0 {
            let mut child = [m0, m1, m2];
            child[c] |= bit;
            spawn(c, (v + 1, child[0], child[1], child[2]));
        }
    }
}

/// Proper 3-colourings and recursive-call count.
pub fn graphcol_serial(g: &Graph) -> (u64, u64) {
    fn rec(g: &Graph, t: Task) -> (u64, u64) {
        let mut count = 0;
        let mut tasks = 1;
        let mut children = Vec::new();
        expand_one(g, t, &mut count, |_, c| children.push(c));
        for c in children {
            let (cc, ct) = rec(g, c);
            count += cc;
            tasks += ct;
        }
        (count, tasks)
    }
    rec(g, (0, 0, 0, 0))
}

fn graphcol_cilk(g: &Graph, ctx: &WorkerCtx<'_>, t: Task) -> u64 {
    let mut count = 0;
    let mut children = Vec::new();
    expand_one(g, t, &mut count, |_, c| children.push(c));
    fn over(g: &Graph, ctx: &WorkerCtx<'_>, mut kids: Vec<Task>) -> u64 {
        match kids.len() {
            0 => 0,
            1 => graphcol_cilk(g, ctx, kids[0]),
            _ => {
                let right = kids.split_off(kids.len() / 2);
                let (a, b) = ctx.join(move |c| over(g, c, kids), move |c| over(g, c, right));
                a + b
            }
        }
    }
    count + over(g, ctx, children)
}

struct GcAos<'g> {
    g: &'g Graph,
}

impl BlockProgram for GcAos<'_> {
    type Store = Vec<Task>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        COLORS
    }

    fn make_root(&self) -> Self::Store {
        vec![(0, 0, 0, 0)]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        for t in block.drain(..) {
            expand_one(self.g, t, red, |site, child| out.bucket(site).push(child));
        }
    }
}

struct GcSoa<'g> {
    g: &'g Graph,
}

impl BlockProgram for GcSoa<'_> {
    type Store = SoaVec4<u8, u64, u64, u64>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        COLORS
    }

    fn make_root(&self) -> Self::Store {
        let mut s = SoaVec4::new();
        s.push(0, 0, 0, 0);
        s
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        for i in 0..block.num_tasks() {
            let t = block.get(i);
            expand_one(self.g, t, red, |site, (v, m0, m1, m2)| out.bucket(site).push(v, m0, m1, m2));
        }
        block.clear();
    }
}

impl Benchmark for GraphCol {
    fn name(&self) -> &'static str {
        "graphcol"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "data-in-task"
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (v, tasks) = graphcol_serial(&self.graph);
            (Outcome::Exact(v), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        cilk_summary(Q, pool, |p| {
            Outcome::Exact(p.install(|ctx| graphcol_cilk(&self.graph, ctx, (0, 0, 0, 0))))
        })
    }

    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary {
        match tier {
            Tier::Block => seq_summary(&GcAos { g: &self.graph }, cfg, Outcome::Exact),
            Tier::Soa | Tier::Simd => seq_summary(&GcSoa { g: &self.graph }, cfg, Outcome::Exact),
        }
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: Tier,
    ) -> RunSummary {
        match tier {
            Tier::Block => par_summary(&GcAos { g: &self.graph }, pool, cfg, kind, Outcome::Exact),
            Tier::Soa | Tier::Simd => par_summary(&GcSoa { g: &self.graph }, pool, cfg, kind, Outcome::Exact),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_six_colorings() {
        let mut g = Graph { n: 3, adj: vec![0; 3] };
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            g.adj[u] |= 1 << v;
            g.adj[v] |= 1 << u;
        }
        assert_eq!(graphcol_serial(&g).0, 6);
    }

    #[test]
    fn empty_graph_has_three_to_the_n() {
        let g = Graph { n: 5, adj: vec![0; 5] };
        assert_eq!(graphcol_serial(&g).0, 243);
    }

    #[test]
    fn all_variants_agree() {
        let b = GraphCol::new(Scale::Tiny);
        let want = b.serial().outcome;
        let pool = ThreadPool::new(2);
        assert_eq!(b.cilk(&pool).outcome, want);
        for tier in [Tier::Block, Tier::Soa] {
            let cfg = SchedConfig::restart(Q, 128, 32);
            assert_eq!(b.blocked_seq(cfg, tier).outcome, want);
            for kind in
                [SchedulerKind::ReExpansion, SchedulerKind::RestartSimplified, SchedulerKind::RestartIdeal]
            {
                assert_eq!(b.blocked_par(&pool, cfg, kind, tier).outcome, want, "{kind:?}");
            }
        }
    }

    #[test]
    fn levels_are_vertices_plus_one() {
        let b = GraphCol::new(Scale::Tiny);
        let run = b.blocked_seq(SchedConfig::reexpansion(Q, 64), Tier::Block);
        assert_eq!(run.stats.max_level, b.graph.n as u64);
    }
}
