//! `fib` — the classic doubly-recursive Fibonacci benchmark.
//!
//! Paper input: `fib(45)` — 45 levels, 3.67 G tasks, `char` data (16-wide
//! vectors). The tree is an unbalanced binary tree (left subtrees are one
//! level deeper than right), which is exactly the shape that starves naive
//! blocked execution and makes re-expansion/restart matter.
//!
//! The SIMD tier processes 16 tasks per step with [`tb_simd::Lanes`]:
//! one comparison for the base-case mask, a masked horizontal add for the
//! reduction, and two streaming compactions for the spawned children.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};
use tb_simd::{compact_append, Lanes};

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::outcome::Outcome;

/// Vector width for `char`-sized tasks (Table 1 caption).
const Q: usize = 16;

/// The fib benchmark at a given input size.
pub struct Fib {
    /// Argument to `fib`.
    pub n: u8,
}

impl Fib {
    /// Preset inputs: tiny 16, small 34, paper 45.
    pub fn new(scale: Scale) -> Self {
        Fib {
            n: match scale {
                Scale::Tiny => 16,
                Scale::Small => 34,
                Scale::Paper => 45,
            },
        }
    }

    fn program(&self, simd: bool) -> FibProg {
        FibProg { n: self.n, simd }
    }
}

/// fib(n) and the number of recursive calls it makes.
pub fn fib_serial(n: u8) -> (u64, u64) {
    if n < 2 {
        (u64::from(n), 1)
    } else {
        let (a, ta) = fib_serial(n - 1);
        let (b, tb) = fib_serial(n - 2);
        (a + b, ta + tb + 1)
    }
}

fn fib_cilk(ctx: &WorkerCtx<'_>, n: u8) -> u64 {
    if n < 2 {
        return u64::from(n);
    }
    let (a, b) = ctx.join(move |c| fib_cilk(c, n - 1), move |c| fib_cilk(c, n - 2));
    a + b
}

/// Blocked fib. A task is just the argument `n`; a single `u8` column means
/// the AoS and SoA layouts coincide, so one program serves every tier, with
/// `simd` selecting the explicit lane kernel.
struct FibProg {
    n: u8,
    simd: bool,
}

impl BlockProgram for FibProg {
    type Store = Vec<u8>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Vec<u8> {
        vec![self.n]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Vec<u8>, out: &mut BucketSet<Vec<u8>>, red: &mut u64) {
        if self.simd {
            expand_simd(block, out, red);
        } else {
            for n in block.drain(..) {
                if n < 2 {
                    *red += u64::from(n);
                } else {
                    out.bucket(0).push(n - 1);
                    out.bucket(1).push(n - 2);
                }
            }
        }
    }
}

/// 16-lane kernel: mask = base case, masked add into the reduction,
/// compaction of the survivors into both spawn buckets.
fn expand_simd(block: &mut Vec<u8>, out: &mut BucketSet<Vec<u8>>, red: &mut u64) {
    let data = block.as_slice();
    let two = Lanes::<u8, 16>::splat(2);
    let zero = Lanes::<u8, 16>::splat(0);
    let mut i = 0;
    while i + 16 <= data.len() {
        let n = Lanes::<u8, 16>::from_slice(&data[i..]);
        let base = n.lt(two);
        // Base-case contribution: sum of n over base lanes (values 0/1).
        let contrib = n.select(base, zero);
        *red += u64::from(contrib.reduce_add());
        let inductive = base.not();
        let n1 = n.map(|x| x.wrapping_sub(1));
        let n2 = n.map(|x| x.wrapping_sub(2));
        compact_append(out.bucket(0), &n1, &inductive);
        compact_append(out.bucket(1), &n2, &inductive);
        i += 16;
    }
    for &n in &data[i..] {
        if n < 2 {
            *red += u64::from(n);
        } else {
            out.bucket(0).push(n - 1);
            out.bucket(1).push(n - 2);
        }
    }
    block.clear();
}

impl Benchmark for Fib {
    fn name(&self) -> &'static str {
        "fib"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "task"
    }

    fn simd_is_explicit(&self) -> bool {
        true
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (v, tasks) = fib_serial(self.n);
            (Outcome::Exact(v), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        let n = self.n;
        cilk_summary(Q, pool, |p| Outcome::Exact(p.install(|ctx| fib_cilk(ctx, n))))
    }

    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary {
        seq_summary(&self.program(tier == Tier::Simd), cfg, Outcome::Exact)
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: Tier,
    ) -> RunSummary {
        par_summary(&self.program(tier == Tier::Simd), pool, cfg, kind, Outcome::Exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_reference() {
        assert_eq!(fib_serial(10).0, 55);
        assert_eq!(fib_serial(20).0, 6765);
        // task count = 2*fib(n+1) - 1
        assert_eq!(fib_serial(10).1, 2 * 89 - 1);
    }

    #[test]
    fn all_variants_agree() {
        let b = Fib::new(Scale::Tiny);
        let want = b.serial().outcome;
        let pool = ThreadPool::new(2);
        assert_eq!(b.cilk(&pool).outcome, want);
        for tier in [Tier::Block, Tier::Soa, Tier::Simd] {
            for cfg in [SchedConfig::reexpansion(Q, 256), SchedConfig::restart(Q, 256, 64)] {
                assert_eq!(b.blocked_seq(cfg, tier).outcome, want, "{tier:?} {:?}", cfg.policy);
                for kind in [
                    SchedulerKind::ReExpansion,
                    SchedulerKind::RestartSimplified,
                    SchedulerKind::RestartIdeal,
                ] {
                    assert_eq!(b.blocked_par(&pool, cfg, kind, tier).outcome, want, "{tier:?} {kind:?}");
                }
            }
        }
    }

    #[test]
    fn simd_kernel_matches_scalar_on_ragged_blocks() {
        // Block sizes that exercise both the 16-lane body and the tail.
        for t_dfe in [1usize, 7, 16, 33, 256] {
            let b = Fib { n: 18 };
            let scalar = b.blocked_seq(SchedConfig::restart(Q, t_dfe.max(2), t_dfe.clamp(2, 8)), Tier::Block);
            let simd = b.blocked_seq(SchedConfig::restart(Q, t_dfe.max(2), t_dfe.clamp(2, 8)), Tier::Simd);
            assert_eq!(scalar.outcome, simd.outcome, "t_dfe={t_dfe}");
            assert_eq!(scalar.stats.tasks_executed, simd.stats.tasks_executed);
        }
    }

    #[test]
    fn task_count_matches_table1_formula() {
        let b = Fib { n: 20 };
        let run = b.blocked_seq(SchedConfig::reexpansion(Q, 512), Tier::Block);
        assert_eq!(run.stats.tasks_executed, fib_serial(20).1);
    }
}
