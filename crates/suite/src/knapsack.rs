//! `knapsack` — exhaustive 0/1 knapsack.
//!
//! Paper input: the "long" instance — 31 levels, 2.15 G tasks (a *perfectly
//! balanced* binary tree: every item is either taken or skipped, no
//! pruning, `2^31` leaves), `short` (i16) data, 8-wide vectors.
//!
//! A task is `(idx, cap_left, value)`; at `idx == n` the leaf contributes
//! `value` if `cap_left >= 0` (overweight branches simply score nothing,
//! keeping the tree perfectly balanced). The reduction is `max`.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};
use tb_simd::{compact_append, Lanes, SoaVec3};

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::outcome::Outcome;

const Q: usize = 8;

/// A deterministic knapsack instance.
pub struct Knapsack {
    weights: Vec<i16>,
    values: Vec<i16>,
    capacity: i16,
}

impl Knapsack {
    /// Presets: tiny 12 items, small 23, paper 31.
    pub fn new(scale: Scale) -> Self {
        let n = match scale {
            Scale::Tiny => 12,
            Scale::Small => 23,
            Scale::Paper => 31,
        };
        Self::with_items(n)
    }

    /// An instance with `n` items from a fixed pseudo-random stream.
    pub fn with_items(n: usize) -> Self {
        // Deterministic xorshift stream: the instance is part of the
        // benchmark definition.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let weights: Vec<i16> = (0..n).map(|_| (next() % 15 + 1) as i16).collect();
        let values: Vec<i16> = (0..n).map(|_| (next() % 20 + 1) as i16).collect();
        let capacity = weights.iter().map(|&w| w as i32).sum::<i32>() as i16 / 2;
        Knapsack { weights, values, capacity }
    }

    /// Number of items (= tree depth).
    pub fn items(&self) -> usize {
        self.weights.len()
    }
}

/// Best achievable value and recursive-call count.
pub fn knapsack_serial(k: &Knapsack) -> (u64, u64) {
    fn rec(k: &Knapsack, idx: usize, cap: i16, value: i16) -> (i16, u64) {
        if idx == k.weights.len() {
            return (if cap >= 0 { value } else { 0 }, 1);
        }
        let (skip, ts) = rec(k, idx + 1, cap, value);
        let (take, tt) = rec(k, idx + 1, cap - k.weights[idx], value + k.values[idx]);
        (skip.max(take), ts + tt + 1)
    }
    let (v, t) = rec(k, 0, k.capacity, 0);
    (v as u64, t)
}

fn knapsack_cilk(k: &Knapsack, ctx: &WorkerCtx<'_>, idx: usize, cap: i16, value: i16) -> i16 {
    if idx == k.weights.len() {
        return if cap >= 0 { value } else { 0 };
    }
    let (skip, take) = ctx.join(
        move |c| knapsack_cilk(k, c, idx + 1, cap, value),
        move |c| knapsack_cilk(k, c, idx + 1, cap - k.weights[idx], value + k.values[idx]),
    );
    skip.max(take)
}

struct KnapAos<'k> {
    k: &'k Knapsack,
}

impl BlockProgram for KnapAos<'_> {
    type Store = Vec<(u8, i16, i16)>;
    type Reducer = i16;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Self::Store {
        vec![(0, self.k.capacity, 0)]
    }

    fn make_reducer(&self) -> i16 {
        0
    }

    fn merge_reducers(&self, a: &mut i16, b: i16) {
        *a = (*a).max(b);
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut i16) {
        let n = self.k.weights.len() as u8;
        for (idx, cap, value) in block.drain(..) {
            if idx == n {
                if cap >= 0 {
                    *red = (*red).max(value);
                }
                continue;
            }
            let i = idx as usize;
            out.bucket(0).push((idx + 1, cap, value));
            out.bucket(1).push((idx + 1, cap - self.k.weights[i], value + self.k.values[i]));
        }
    }
}

struct KnapSoa<'k> {
    k: &'k Knapsack,
    simd: bool,
}

impl BlockProgram for KnapSoa<'_> {
    type Store = SoaVec3<u8, i16, i16>;
    type Reducer = i16;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Self::Store {
        let mut s = SoaVec3::new();
        s.push(0, self.k.capacity, 0);
        s
    }

    fn make_reducer(&self) -> i16 {
        0
    }

    fn merge_reducers(&self, a: &mut i16, b: i16) {
        *a = (*a).max(b);
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut i16) {
        let n = self.k.weights.len() as u8;
        let len = block.num_tasks();
        let mut i = 0;
        if self.simd {
            // All tasks in a block share a level in the perfectly balanced
            // tree, hence share `idx`; the kernel still reads it per lane
            // and handles mixed blocks correctly via masks.
            let nn = Lanes::<u8, 8>::splat(n);
            let zero16 = Lanes::<i16, 8>::splat(0);
            while i + 8 <= len {
                let idx = Lanes::<u8, 8>::from_slice(&block.c0[i..]);
                let cap = Lanes::<i16, 8>::from_slice(&block.c1[i..]);
                let val = Lanes::<i16, 8>::from_slice(&block.c2[i..]);
                let base = idx.eq_lanes(nn);
                if base.any() {
                    let feasible = cap.ge(zero16).and(base);
                    let scores = val.select(feasible, zero16);
                    // max-reduce the feasible leaf scores.
                    for lane in 0..8 {
                        if feasible.0[lane] {
                            *red = (*red).max(scores.lane(lane));
                        }
                    }
                }
                let inductive = base.not();
                // Per-lane item lookup (gather), then vector arithmetic.
                let mut w = [0i16; 8];
                let mut v = [0i16; 8];
                for lane in 0..8 {
                    let it = idx.lane(lane) as usize;
                    if inductive.0[lane] {
                        w[lane] = self.k.weights[it];
                        v[lane] = self.k.values[it];
                    }
                }
                let w = Lanes(w);
                let v = Lanes(v);
                let idx1 = idx.map(|x| x.wrapping_add(1));
                let cap_take = cap.zip_map(w, i16::wrapping_sub);
                let val_take = val.zip_map(v, i16::wrapping_add);
                let skip = out.bucket(0);
                compact_append(&mut skip.c0, &idx1, &inductive);
                compact_append(&mut skip.c1, &cap, &inductive);
                compact_append(&mut skip.c2, &val, &inductive);
                let take = out.bucket(1);
                compact_append(&mut take.c0, &idx1, &inductive);
                compact_append(&mut take.c1, &cap_take, &inductive);
                compact_append(&mut take.c2, &val_take, &inductive);
                i += 8;
            }
        }
        for j in i..len {
            let (idx, cap, value) = block.get(j);
            if idx == n {
                if cap >= 0 {
                    *red = (*red).max(value);
                }
                continue;
            }
            let it = idx as usize;
            out.bucket(0).push(idx + 1, cap, value);
            out.bucket(1).push(idx + 1, cap - self.k.weights[it], value + self.k.values[it]);
        }
        block.clear();
    }
}

impl Benchmark for Knapsack {
    fn name(&self) -> &'static str {
        "knapsack"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "task"
    }

    fn simd_is_explicit(&self) -> bool {
        true
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (v, tasks) = knapsack_serial(self);
            (Outcome::Exact(v), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        cilk_summary(Q, pool, |p| {
            Outcome::Exact(p.install(|ctx| knapsack_cilk(self, ctx, 0, self.capacity, 0)) as u64)
        })
    }

    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary {
        let to = |r: i16| Outcome::Exact(r as u64);
        match tier {
            Tier::Block => seq_summary(&KnapAos { k: self }, cfg, to),
            Tier::Soa => seq_summary(&KnapSoa { k: self, simd: false }, cfg, to),
            Tier::Simd => seq_summary(&KnapSoa { k: self, simd: true }, cfg, to),
        }
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: Tier,
    ) -> RunSummary {
        let to = |r: i16| Outcome::Exact(r as u64);
        match tier {
            Tier::Block => par_summary(&KnapAos { k: self }, pool, cfg, kind, to),
            Tier::Soa => par_summary(&KnapSoa { k: self, simd: false }, pool, cfg, kind, to),
            Tier::Simd => par_summary(&KnapSoa { k: self, simd: true }, pool, cfg, kind, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Independent DP solution for cross-checking the exhaustive search.
    fn dp_solve(k: &Knapsack) -> u64 {
        let cap = k.capacity as usize;
        let mut best = vec![0i32; cap + 1];
        for i in 0..k.items() {
            let (w, v) = (k.weights[i] as usize, k.values[i] as i32);
            for c in (w..=cap).rev() {
                best[c] = best[c].max(best[c - w] + v);
            }
        }
        best[cap] as u64
    }

    #[test]
    fn serial_matches_dp() {
        let k = Knapsack::new(Scale::Tiny);
        assert_eq!(knapsack_serial(&k).0, dp_solve(&k));
    }

    #[test]
    fn tree_is_perfectly_balanced() {
        let k = Knapsack::with_items(10);
        // #tasks = 2^(n+1) - 1 for a perfect binary tree of depth n.
        assert_eq!(knapsack_serial(&k).1, (1 << 11) - 1);
    }

    #[test]
    fn all_variants_agree() {
        let k = Knapsack::new(Scale::Tiny);
        let want = k.serial().outcome;
        let pool = ThreadPool::new(2);
        assert_eq!(k.cilk(&pool).outcome, want);
        for tier in [Tier::Block, Tier::Soa, Tier::Simd] {
            let cfg = SchedConfig::restart(Q, 64, 16);
            assert_eq!(k.blocked_seq(cfg, tier).outcome, want, "{tier:?}");
            assert_eq!(k.blocked_par(&pool, cfg, SchedulerKind::RestartSimplified, tier).outcome, want);
            assert_eq!(k.blocked_par(&pool, cfg, SchedulerKind::RestartIdeal, tier).outcome, want);
        }
    }

    #[test]
    fn simd_kernel_counts_match() {
        let k = Knapsack::with_items(12);
        let cfg = SchedConfig::reexpansion(Q, 128);
        let a = k.blocked_seq(cfg, Tier::Soa);
        let b = k.blocked_seq(cfg, Tier::Simd);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.stats.tasks_executed, b.stats.tasks_executed);
    }
}
