//! `nqueens` — counting N-queens placements.
//!
//! Paper input: 15×15 — 16 levels, 168 M tasks. This is the paper's first
//! *data-parallelism-nested-in-task-parallelism* benchmark: each task (a
//! partial placement) runs a data-parallel loop over candidate columns and
//! spawns one child task per feasible column, so the arity is `n`.
//!
//! A task is `(row, cols, diag1, diag2)` in the classic bitmask encoding;
//! the SoA tier stores the four fields as columns. The spawn loop is
//! value-dependent (iterating set bits), so the Simd tier keeps the SoA
//! kernel (`simd_is_explicit == false`), as the paper's intro notes this
//! benchmark vectorizes through blocking + layout rather than wide
//! arithmetic.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};
use tb_simd::SoaVec4;

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::outcome::Outcome;

const Q: usize = 16;

/// The N-queens benchmark.
pub struct NQueens {
    /// Board size.
    pub n: u8,
}

impl NQueens {
    /// Presets: tiny 8 (92 solutions), small 12 (14 200), paper 15 (2 279 184).
    pub fn new(scale: Scale) -> Self {
        NQueens {
            n: match scale {
                Scale::Tiny => 8,
                Scale::Small => 12,
                Scale::Paper => 15,
            },
        }
    }

    fn full(&self) -> u16 {
        (1u16 << self.n) - 1
    }
}

/// Solutions and recursive-call count.
pub fn nqueens_serial(n: u8) -> (u64, u64) {
    fn rec(full: u16, cols: u16, d1: u32, d2: u32) -> (u64, u64) {
        if cols == full {
            return (1, 1);
        }
        let mut free = !(cols | d1 as u16 | d2 as u16) & full;
        let mut count = 0;
        let mut tasks = 1;
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            let (c, t) =
                rec(full, cols | bit, ((d1 | u32::from(bit)) << 1) & 0xFFFF, (d2 | u32::from(bit)) >> 1);
            count += c;
            tasks += t;
        }
        (count, tasks)
    }
    rec((1u16 << n) - 1, 0, 0, 0)
}

fn nqueens_cilk(ctx: &WorkerCtx<'_>, full: u16, cols: u16, d1: u32, d2: u32) -> u64 {
    if cols == full {
        return 1;
    }
    // Fork the candidate columns as a balanced join tree over the set bits.
    fn over_bits(ctx: &WorkerCtx<'_>, full: u16, cols: u16, d1: u32, d2: u32, bits: Vec<u16>) -> u64 {
        match bits.len() {
            0 => 0,
            1 => {
                let bit = bits[0];
                nqueens_cilk(
                    ctx,
                    full,
                    cols | bit,
                    ((d1 | u32::from(bit)) << 1) & 0xFFFF,
                    (d2 | u32::from(bit)) >> 1,
                )
            }
            _ => {
                let mut left = bits;
                let right = left.split_off(left.len() / 2);
                let (a, b) = ctx.join(
                    move |c| over_bits(c, full, cols, d1, d2, left),
                    move |c| over_bits(c, full, cols, d1, d2, right),
                );
                a + b
            }
        }
    }
    let mut free = !(cols | d1 as u16 | d2 as u16) & full;
    let mut bits = Vec::new();
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free ^= bit;
        bits.push(bit);
    }
    over_bits(ctx, full, cols, d1, d2, bits)
}

type Task = (u8, u16, u32, u32); // (row, cols, diag1, diag2)

#[inline]
pub(crate) fn expand_one(full: u16, n: u8, t: Task, red: &mut u64, mut spawn: impl FnMut(usize, Task)) {
    let (row, cols, d1, d2) = t;
    if cols == full {
        *red += 1;
        return;
    }
    let mut free = !(cols | d1 as u16 | d2 as u16) & full;
    let mut site = 0usize;
    let _ = n;
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free ^= bit;
        spawn(site, (row + 1, cols | bit, ((d1 | u32::from(bit)) << 1) & 0xFFFF, (d2 | u32::from(bit)) >> 1));
        site += 1;
    }
}

struct NqAos {
    n: u8,
    full: u16,
}

impl BlockProgram for NqAos {
    type Store = Vec<Task>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        self.n as usize
    }

    fn make_root(&self) -> Self::Store {
        vec![(0, 0, 0, 0)]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        for t in block.drain(..) {
            expand_one(self.full, self.n, t, red, |site, child| out.bucket(site).push(child));
        }
    }
}

struct NqSoa {
    n: u8,
    full: u16,
}

impl BlockProgram for NqSoa {
    type Store = SoaVec4<u8, u16, u32, u32>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        self.n as usize
    }

    fn make_root(&self) -> Self::Store {
        let mut s = SoaVec4::new();
        s.push(0, 0, 0, 0);
        s
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        for i in 0..block.num_tasks() {
            let t = block.get(i);
            expand_one(self.full, self.n, t, red, |site, (r, c, d1, d2)| out.bucket(site).push(r, c, d1, d2));
        }
        block.clear();
    }
}

impl Benchmark for NQueens {
    fn name(&self) -> &'static str {
        "nqueens"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "data-in-task"
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (v, tasks) = nqueens_serial(self.n);
            (Outcome::Exact(v), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        let full = self.full();
        cilk_summary(Q, pool, |p| Outcome::Exact(p.install(|ctx| nqueens_cilk(ctx, full, 0, 0, 0))))
    }

    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary {
        match tier {
            Tier::Block => seq_summary(&NqAos { n: self.n, full: self.full() }, cfg, Outcome::Exact),
            Tier::Soa | Tier::Simd => {
                seq_summary(&NqSoa { n: self.n, full: self.full() }, cfg, Outcome::Exact)
            }
        }
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: Tier,
    ) -> RunSummary {
        match tier {
            Tier::Block => {
                par_summary(&NqAos { n: self.n, full: self.full() }, pool, cfg, kind, Outcome::Exact)
            }
            Tier::Soa | Tier::Simd => {
                par_summary(&NqSoa { n: self.n, full: self.full() }, pool, cfg, kind, Outcome::Exact)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_solution_counts() {
        assert_eq!(nqueens_serial(6).0, 4);
        assert_eq!(nqueens_serial(8).0, 92);
        assert_eq!(nqueens_serial(9).0, 352);
    }

    #[test]
    fn all_variants_agree() {
        let b = NQueens { n: 7 };
        let want = b.serial().outcome;
        let pool = ThreadPool::new(2);
        assert_eq!(b.cilk(&pool).outcome, want);
        for tier in [Tier::Block, Tier::Soa] {
            for cfg in [SchedConfig::reexpansion(Q, 128), SchedConfig::restart(Q, 128, 32)] {
                assert_eq!(b.blocked_seq(cfg, tier).outcome, want);
                for kind in [
                    SchedulerKind::ReExpansion,
                    SchedulerKind::RestartSimplified,
                    SchedulerKind::RestartIdeal,
                ] {
                    assert_eq!(b.blocked_par(&pool, cfg, kind, tier).outcome, want, "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn levels_match_paper_shape() {
        // n+1 levels: root at 0, solutions at level n.
        let b = NQueens { n: 6 };
        let run = b.blocked_seq(SchedConfig::restart(Q, 64, 16), Tier::Block);
        assert_eq!(run.stats.max_level, 6);
    }
}
