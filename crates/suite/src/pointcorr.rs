//! `pointcorr` — two-point correlation via kd-tree.
//!
//! Paper input: 300 K points — 18 levels, 1.77 G tasks, `float` data,
//! 4-wide vectors. For every query point, count the points within radius
//! `r`. Three levels of parallelism (§7): a data-parallel outer loop over
//! queries, a task-parallel recursion over kd-tree nodes (spawn left/right
//! when the query ball intersects the child boxes), and a data-parallel
//! base case scanning the points of a leaf.
//!
//! The leaf scan is the SIMD surface: 8 distances per step over the
//! kd-tree's SoA coordinate columns, counting the mask. Counts are exact
//! integers, so every variant must agree bit-for-bit.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};
use tb_simd::{Lanes, SoaVec2};

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::geom::kdtree::KdTree;
use crate::geom::points::uniform_cube;
use crate::outcome::Outcome;

const Q: usize = 4;
const LEAF: usize = 8;

/// The point-correlation benchmark.
pub struct PointCorr {
    tree: KdTree,
    queries: Vec<[f32; 3]>,
    r2: f32,
}

impl PointCorr {
    /// Presets: tiny 512 points / 64 queries, small 30 000 / 2 000, paper
    /// 300 000 / 300 000 (every point queries, as in the paper). The radius
    /// targets ~30 neighbours per query in the unit cube.
    pub fn new(scale: Scale) -> Self {
        let (n, nq) = match scale {
            Scale::Tiny => (512, 64),
            Scale::Small => (30_000, 2_000),
            Scale::Paper => (300_000, 300_000),
        };
        let points = uniform_cube(n, 0x9C07_71A0);
        let queries = points[..nq].to_vec();
        let r = (30.0 * 3.0 / (4.0 * std::f32::consts::PI * n as f32)).cbrt();
        PointCorr { tree: KdTree::build(&points, LEAF), queries, r2: r * r }
    }

    /// Number of queries.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// The kd-tree.
    pub fn tree(&self) -> &KdTree {
        &self.tree
    }
}

/// Scalar leaf scan: count stored points within `r2` of `q`.
#[inline]
fn leaf_count_scalar(t: &KdTree, start: u32, end: u32, q: &[f32; 3], r2: f32) -> u64 {
    let mut count = 0;
    for i in start as usize..end as usize {
        let dx = t.xs[i] - q[0];
        let dy = t.ys[i] - q[1];
        let dz = t.zs[i] - q[2];
        if dx * dx + dy * dy + dz * dz <= r2 {
            count += 1;
        }
    }
    count
}

/// Vectorized leaf scan: 8 distances per step over the SoA columns.
#[inline]
fn leaf_count_simd(t: &KdTree, start: u32, end: u32, q: &[f32; 3], r2: f32) -> u64 {
    let (s, e) = (start as usize, end as usize);
    let qx = Lanes::<f32, 8>::splat(q[0]);
    let qy = Lanes::<f32, 8>::splat(q[1]);
    let qz = Lanes::<f32, 8>::splat(q[2]);
    let rr = Lanes::<f32, 8>::splat(r2);
    let mut count = 0u64;
    let mut i = s;
    while i + 8 <= e {
        let dx = Lanes::<f32, 8>::from_slice(&t.xs[i..]) - qx;
        let dy = Lanes::<f32, 8>::from_slice(&t.ys[i..]) - qy;
        let dz = Lanes::<f32, 8>::from_slice(&t.zs[i..]) - qz;
        let d2 = dx * dx + dy * dy + dz * dz;
        count += d2.le(rr).count() as u64;
        i += 8;
    }
    count + leaf_count_scalar(t, i as u32, end, q, r2)
}

/// One traversal step for `(query, node)`.
#[inline]
fn expand_one(
    pc: &PointCorr,
    query: u32,
    node: u32,
    simd: bool,
    red: &mut u64,
    mut spawn: impl FnMut(usize, u32),
) {
    let n = &pc.tree.nodes[node as usize];
    let q = &pc.queries[query as usize];
    if n.dist2_to(q) > pc.r2 {
        return; // pruned: the query ball misses this subtree entirely
    }
    if n.is_leaf() {
        *red += if simd {
            leaf_count_simd(&pc.tree, n.start, n.end, q, pc.r2)
        } else {
            leaf_count_scalar(&pc.tree, n.start, n.end, q, pc.r2)
        };
        return;
    }
    spawn(0, n.left as u32);
    spawn(1, n.right as u32);
}

/// Serial count over all queries; returns (count, task count).
pub fn pointcorr_serial(pc: &PointCorr) -> (u64, u64) {
    let mut count = 0;
    let mut tasks = 0u64;
    let mut stack = Vec::new();
    for query in 0..pc.queries.len() as u32 {
        stack.push(0u32);
        while let Some(node) = stack.pop() {
            tasks += 1;
            expand_one(pc, query, node, false, &mut count, |_, c| stack.push(c));
        }
    }
    (count, tasks)
}

fn query_cilk(pc: &PointCorr, ctx: &WorkerCtx<'_>, query: u32, node: u32) -> u64 {
    let mut count = 0;
    let mut kids = [0u32; 2];
    let mut nk = 0usize;
    expand_one(pc, query, node, false, &mut count, |_, c| {
        kids[nk] = c;
        nk += 1;
    });
    match nk {
        0 => count,
        1 => count + query_cilk(pc, ctx, query, kids[0]),
        _ => {
            let (l, r) = (kids[0], kids[1]);
            let (a, b) = ctx.join(move |c| query_cilk(pc, c, query, l), move |c| query_cilk(pc, c, query, r));
            count + a + b
        }
    }
}

struct PcAos<'p> {
    pc: &'p PointCorr,
}

impl BlockProgram for PcAos<'_> {
    type Store = Vec<(u32, u32)>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Self::Store {
        (0..self.pc.queries.len() as u32).map(|q| (q, 0)).collect()
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        for (query, node) in block.drain(..) {
            expand_one(self.pc, query, node, false, red, |site, c| out.bucket(site).push((query, c)));
        }
    }
}

struct PcSoa<'p> {
    pc: &'p PointCorr,
    simd: bool,
}

impl BlockProgram for PcSoa<'_> {
    type Store = SoaVec2<u32, u32>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Self::Store {
        let mut s = SoaVec2::with_capacity(self.pc.queries.len());
        for q in 0..self.pc.queries.len() as u32 {
            s.push(q, 0);
        }
        s
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        for i in 0..block.num_tasks() {
            let (query, node) = block.get(i);
            expand_one(self.pc, query, node, self.simd, red, |site, c| out.bucket(site).push(query, c));
        }
        block.clear();
    }
}

impl Benchmark for PointCorr {
    fn name(&self) -> &'static str {
        "pointcorr"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "data-in-task-in-data"
    }

    fn simd_is_explicit(&self) -> bool {
        true
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (v, tasks) = pointcorr_serial(self);
            (Outcome::Exact(v), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        cilk_summary(Q, pool, |p| {
            Outcome::Exact(p.install(|ctx| {
                fn queries(pc: &PointCorr, ctx: &WorkerCtx<'_>, lo: u32, hi: u32) -> u64 {
                    if hi - lo == 1 {
                        return query_cilk(pc, ctx, lo, 0);
                    }
                    let mid = lo + (hi - lo) / 2;
                    let (a, b) = ctx.join(move |c| queries(pc, c, lo, mid), move |c| queries(pc, c, mid, hi));
                    a + b
                }
                queries(self, ctx, 0, self.queries.len() as u32)
            }))
        })
    }

    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary {
        match tier {
            Tier::Block => seq_summary(&PcAos { pc: self }, cfg, Outcome::Exact),
            Tier::Soa => seq_summary(&PcSoa { pc: self, simd: false }, cfg, Outcome::Exact),
            Tier::Simd => seq_summary(&PcSoa { pc: self, simd: true }, cfg, Outcome::Exact),
        }
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: Tier,
    ) -> RunSummary {
        match tier {
            Tier::Block => par_summary(&PcAos { pc: self }, pool, cfg, kind, Outcome::Exact),
            Tier::Soa => par_summary(&PcSoa { pc: self, simd: false }, pool, cfg, kind, Outcome::Exact),
            Tier::Simd => par_summary(&PcSoa { pc: self, simd: true }, pool, cfg, kind, Outcome::Exact),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::points::dist2;

    /// Brute-force reference count.
    fn brute(pc: &PointCorr) -> u64 {
        let t = &pc.tree;
        let mut count = 0;
        for q in &pc.queries {
            for i in 0..t.len() {
                let p = [t.xs[i], t.ys[i], t.zs[i]];
                if dist2(q, &p) <= pc.r2 {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn serial_matches_brute_force() {
        let pc = PointCorr::new(Scale::Tiny);
        assert_eq!(pointcorr_serial(&pc).0, brute(&pc));
    }

    #[test]
    fn all_variants_agree_exactly() {
        let pc = PointCorr::new(Scale::Tiny);
        let want = pc.serial().outcome;
        let pool = ThreadPool::new(2);
        assert_eq!(pc.cilk(&pool).outcome, want);
        for tier in [Tier::Block, Tier::Soa, Tier::Simd] {
            let cfg = SchedConfig::restart(Q, 256, 64);
            assert_eq!(pc.blocked_seq(cfg, tier).outcome, want, "{tier:?}");
            for kind in
                [SchedulerKind::ReExpansion, SchedulerKind::RestartSimplified, SchedulerKind::RestartIdeal]
            {
                assert_eq!(pc.blocked_par(&pool, cfg, kind, tier).outcome, want, "{kind:?}");
            }
        }
    }

    #[test]
    fn simd_leaf_scan_matches_scalar() {
        let pc = PointCorr::new(Scale::Tiny);
        let t = &pc.tree;
        for n in t.nodes.iter().filter(|n| n.is_leaf()) {
            for q in pc.queries.iter().take(8) {
                assert_eq!(
                    leaf_count_scalar(t, n.start, n.end, q, pc.r2),
                    leaf_count_simd(t, n.start, n.end, q, pc.r2)
                );
            }
        }
    }
}
