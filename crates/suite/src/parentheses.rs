//! `parentheses` — counting balanced parenthesis sequences.
//!
//! Paper input: n=19 — 37 levels (2n−1 recursion steps), 4.85 G tasks,
//! `char` data. A task is a valid prefix, represented by its counts
//! `(open, close)`; it spawns "add `(`" when `open < n` and "add `)`"
//! when `close < open`, and is a base case at `(n, n)`. The number of
//! leaves is the Catalan number `C_n`; the tree is unbalanced because the
//! close-spawn disappears along the left rim.

use tb_core::prelude::*;
use tb_runtime::{ThreadPool, WorkerCtx};
use tb_simd::{compact_append, Lanes, SoaVec2};

use crate::bench::{
    cilk_summary, par_summary, seq_summary, serial_summary, Benchmark, RunSummary, Scale, Tier,
};
use crate::outcome::Outcome;

const Q: usize = 16;

/// The parentheses benchmark.
pub struct Parentheses {
    /// Number of parenthesis pairs.
    pub n: u8,
}

impl Parentheses {
    /// Presets: tiny 7, small 15, paper 19.
    pub fn new(scale: Scale) -> Self {
        Parentheses {
            n: match scale {
                Scale::Tiny => 7,
                Scale::Small => 15,
                Scale::Paper => 19,
            },
        }
    }
}

/// Count of balanced sequences (Catalan(n)) and recursive-call count.
pub fn parentheses_serial(n: u8) -> (u64, u64) {
    fn rec(n: u8, open: u8, close: u8) -> (u64, u64) {
        if open == n && close == n {
            return (1, 1);
        }
        let mut count = 0;
        let mut tasks = 1;
        if open < n {
            let (c, t) = rec(n, open + 1, close);
            count += c;
            tasks += t;
        }
        if close < open {
            let (c, t) = rec(n, open, close + 1);
            count += c;
            tasks += t;
        }
        (count, tasks)
    }
    rec(n, 0, 0)
}

fn parens_cilk(ctx: &WorkerCtx<'_>, n: u8, open: u8, close: u8) -> u64 {
    if open == n && close == n {
        return 1;
    }
    match (open < n, close < open) {
        (true, true) => {
            let (a, b) = ctx.join(
                move |c| parens_cilk(c, n, open + 1, close),
                move |c| parens_cilk(c, n, open, close + 1),
            );
            a + b
        }
        (true, false) => parens_cilk(ctx, n, open + 1, close),
        (false, true) => parens_cilk(ctx, n, open, close + 1),
        (false, false) => unreachable!("non-base task must spawn"),
    }
}

struct ParAos {
    n: u8,
}

impl BlockProgram for ParAos {
    type Store = Vec<(u8, u8)>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Self::Store {
        vec![(0, 0)]
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        let n = self.n;
        for (open, close) in block.drain(..) {
            if open == n && close == n {
                *red += 1;
                continue;
            }
            if open < n {
                out.bucket(0).push((open + 1, close));
            }
            if close < open {
                out.bucket(1).push((open, close + 1));
            }
        }
    }
}

struct ParSoa {
    n: u8,
    simd: bool,
}

impl BlockProgram for ParSoa {
    type Store = SoaVec2<u8, u8>;
    type Reducer = u64;

    fn arity(&self) -> usize {
        2
    }

    fn make_root(&self) -> Self::Store {
        let mut s = SoaVec2::new();
        s.push(0, 0);
        s
    }

    fn make_reducer(&self) -> u64 {
        0
    }

    fn merge_reducers(&self, a: &mut u64, b: u64) {
        *a += b;
    }

    fn expand(&self, block: &mut Self::Store, out: &mut BucketSet<Self::Store>, red: &mut u64) {
        let n = self.n;
        let len = block.num_tasks();
        let (os, cs) = (&block.c0, &block.c1);
        let mut i = 0;
        if self.simd {
            let nn = Lanes::<u8, 16>::splat(n);
            while i + 16 <= len {
                let o = Lanes::<u8, 16>::from_slice(&os[i..]);
                let c = Lanes::<u8, 16>::from_slice(&cs[i..]);
                let base = o.eq_lanes(nn).and(c.eq_lanes(nn));
                *red += base.count() as u64;
                let can_open = o.lt(nn);
                let can_close = c.lt(o);
                let o1 = o.map(|x| x.wrapping_add(1));
                let c1 = c.map(|x| x.wrapping_add(1));
                let b0 = out.bucket(0);
                compact_append(&mut b0.c0, &o1, &can_open);
                compact_append(&mut b0.c1, &c, &can_open);
                let b1 = out.bucket(1);
                compact_append(&mut b1.c0, &o, &can_close);
                compact_append(&mut b1.c1, &c1, &can_close);
                i += 16;
            }
        }
        for j in i..len {
            let (open, close) = (os[j], cs[j]);
            if open == n && close == n {
                *red += 1;
                continue;
            }
            if open < n {
                out.bucket(0).push(open + 1, close);
            }
            if close < open {
                out.bucket(1).push(open, close + 1);
            }
        }
        block.clear();
    }
}

impl Benchmark for Parentheses {
    fn name(&self) -> &'static str {
        "parentheses"
    }

    fn q(&self) -> usize {
        Q
    }

    fn nesting(&self) -> &'static str {
        "task"
    }

    fn simd_is_explicit(&self) -> bool {
        true
    }

    fn serial(&self) -> RunSummary {
        serial_summary(Q, || {
            let (v, tasks) = parentheses_serial(self.n);
            (Outcome::Exact(v), tasks)
        })
    }

    fn cilk(&self, pool: &ThreadPool) -> RunSummary {
        let n = self.n;
        cilk_summary(Q, pool, |p| Outcome::Exact(p.install(|ctx| parens_cilk(ctx, n, 0, 0))))
    }

    fn blocked_seq(&self, cfg: SchedConfig, tier: Tier) -> RunSummary {
        match tier {
            Tier::Block => seq_summary(&ParAos { n: self.n }, cfg, Outcome::Exact),
            Tier::Soa => seq_summary(&ParSoa { n: self.n, simd: false }, cfg, Outcome::Exact),
            Tier::Simd => seq_summary(&ParSoa { n: self.n, simd: true }, cfg, Outcome::Exact),
        }
    }

    fn blocked_par(
        &self,
        pool: &ThreadPool,
        cfg: SchedConfig,
        kind: SchedulerKind,
        tier: Tier,
    ) -> RunSummary {
        match tier {
            Tier::Block => par_summary(&ParAos { n: self.n }, pool, cfg, kind, Outcome::Exact),
            Tier::Soa => par_summary(&ParSoa { n: self.n, simd: false }, pool, cfg, kind, Outcome::Exact),
            Tier::Simd => par_summary(&ParSoa { n: self.n, simd: true }, pool, cfg, kind, Outcome::Exact),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_catalan() {
        // Catalan numbers: 1, 1, 2, 5, 14, 42, 132, 429 …
        for (n, catalan) in [(1u8, 1u64), (2, 2), (3, 5), (4, 14), (5, 42), (7, 429)] {
            assert_eq!(parentheses_serial(n).0, catalan, "n={n}");
        }
    }

    #[test]
    fn all_variants_agree() {
        let b = Parentheses::new(Scale::Tiny);
        let want = b.serial().outcome;
        let pool = ThreadPool::new(2);
        assert_eq!(b.cilk(&pool).outcome, want);
        for tier in [Tier::Block, Tier::Soa, Tier::Simd] {
            let cfg = SchedConfig::restart(Q, 128, 32);
            assert_eq!(b.blocked_seq(cfg, tier).outcome, want, "{tier:?}");
            assert_eq!(b.blocked_par(&pool, cfg, SchedulerKind::ReExpansion, tier).outcome, want);
        }
    }

    #[test]
    fn task_counts_equal_across_tiers() {
        let b = Parentheses { n: 9 };
        let cfg = SchedConfig::reexpansion(Q, 64);
        let a = b.blocked_seq(cfg, Tier::Block).stats.tasks_executed;
        let s = b.blocked_seq(cfg, Tier::Simd).stats.tasks_executed;
        assert_eq!(a, s);
        assert_eq!(a, parentheses_serial(9).1);
    }
}
