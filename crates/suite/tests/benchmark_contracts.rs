//! Contract tests over the whole benchmark registry: properties every
//! benchmark must satisfy regardless of its domain.

use tb_core::prelude::*;
use tb_suite::{all_benchmarks, Scale, Tier};

#[test]
fn names_are_unique_and_stable() {
    let names: Vec<_> = all_benchmarks(Scale::Tiny).iter().map(|b| b.name()).collect();
    let mut dedup = names.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate benchmark names");
}

#[test]
fn scales_are_strictly_increasing_in_work() {
    for (tiny, small) in all_benchmarks(Scale::Tiny).iter().zip(all_benchmarks(Scale::Small).iter()) {
        let cfg = SchedConfig::reexpansion(tiny.q(), 1 << 10);
        let t_tasks = tiny.blocked_seq(cfg, Tier::Block).stats.tasks_executed;
        let s_tasks = small.blocked_seq(cfg, Tier::Block).stats.tasks_executed;
        assert!(s_tasks > t_tasks, "{}: small ({s_tasks}) not larger than tiny ({t_tasks})", tiny.name());
    }
}

#[test]
fn serial_task_counts_match_blocked_task_counts() {
    for b in all_benchmarks(Scale::Tiny) {
        let serial = b.serial().stats.tasks_executed;
        let blocked = b.blocked_seq(SchedConfig::restart(b.q(), 64, 16), Tier::Block).stats.tasks_executed;
        assert_eq!(serial, blocked, "{}: blocking changed the computation tree", b.name());
    }
}

#[test]
fn utilization_improves_with_block_size() {
    // Monotone within measurement slack: bigger blocks can only fill more
    // lanes (§7.2 "SIMD utilization grows with increasing block size").
    for b in all_benchmarks(Scale::Tiny) {
        let at = |block: usize| {
            b.blocked_seq(SchedConfig::restart(b.q(), block, block), Tier::Block).stats.simd_utilization()
        };
        let (lo, hi) = (at(4), at(1 << 12));
        assert!(
            hi + 1e-9 >= lo,
            "{}: utilization fell from {lo:.3} (block 4) to {hi:.3} (block 4096)",
            b.name()
        );
    }
}

#[test]
fn levels_match_paper_structure() {
    // Table 1's #Levels column encodes each benchmark's tree depth
    // structure; verify the structural relationships that scale-invariantly
    // transfer (knapsack perfectly balanced: levels = items + 1; nqueens:
    // levels = n + 1; graphcol: vertices + 1).
    for b in all_benchmarks(Scale::Tiny) {
        let run = b.blocked_seq(SchedConfig::reexpansion(b.q(), 256), Tier::Block);
        let levels = run.stats.max_level + 1;
        match b.name() {
            "knapsack" => assert_eq!(levels, 13), // 12 items + leaf level
            "nqueens" => assert_eq!(levels, 9),   // 8 rows + root
            "graphcol" => assert_eq!(levels, 13), // 12 vertices + root
            "fib" => assert_eq!(levels, 16),      // fib(16): depth n-1 + base
            _ => assert!(levels >= 2),
        }
    }
}
